//! The study driver: simulate the fleet through its monitored windows
//! under live collection, then assemble the measurement database.
//!
//! The simulate→collect→assemble pipeline is parallel end to end (see
//! ARCHITECTURE.md): devices run as independent *lanes*, each with its own
//! driver RNG stream, snapshot collector and upload buffer. Cross-lane
//! state is either sharded ([`racket_collect::ShardedIngest`] on the
//! direct path), commutative (server stats counters), or merged serially
//! in lane order (review posts) — so the output is a pure function of the
//! configuration, never of the worker-thread count.

use racket_agents::{
    apply_action_collecting, expand_directives, stream_seed, Action, Fleet, FleetConfig,
    LaneScratch, TimelineAction,
};
use racket_campaign::{detect_with_text, CampaignReport, CampaignSketch, DetectorConfig};
use racket_collect::wire::Message;
use racket_collect::{
    coalesce_installs, AsyncCollectServer, AsyncServerConfig, CandidateInstall, CollectionServer,
    CollectorConfig, ColumnarSnapshots, DataBuffer, FaultPlan, InstallRecord, RetryPolicy,
    ShardedIngest, SnapshotBatch, SnapshotCollector, WireLane,
};
use racket_features::{DeviceObservation, DeviceStreamState};
use racket_obs::{span, LocalHistogram, Registry};
use racket_playstore::crawler::ReviewCrawler;
use racket_types::metrics::keys;
use racket_types::{AppId, Cohort, Persona, PipelineMetrics, Review, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Salt mixed into the study seed before deriving per-device driver RNG
/// streams, so a fleet generated and driven from the same numeric seed
/// (e.g. 2021/2021 at paper scale) does not replay the history streams.
const DRIVER_STREAM_SALT: u64 = 0xA076_1D64_78BD_642F;

/// Salt for deriving per-lane fault-injection RNG streams on chaos runs,
/// kept disjoint from the driver streams so enabling faults perturbs the
/// network and nothing else.
const FAULT_STREAM_SALT: u64 = 0x243F_6A88_85A3_08D3;

/// How snapshots travel from collectors to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionPath {
    /// In-process ingestion (fast; the default for large fleets): device
    /// lanes ingest concurrently through the sharded store. The snapshots
    /// and aggregation logic are identical to the wire path — only the
    /// framing/transport hop is skipped.
    Direct,
    /// Full protocol: snapshots → data buffer (rotation + LZSS) → framed
    /// upload over an in-memory transport → server decode → hash ack →
    /// buffer deletion. Exercises every §3 component; used by tests and
    /// the protocol-heavy experiments.
    Wire,
    /// Full protocol through the asynchronous collection plane: every
    /// device lane holds a live connection to an
    /// [`racket_collect::AsyncCollectServer`], whose reactor workers
    /// multiplex the whole fleet with bounded per-connection queues and
    /// load-shedding admission control (ARCHITECTURE.md §8). Wire-v2
    /// semantics are identical to [`CollectionPath::Wire`] — the study
    /// data output is byte-for-byte the same; only throughput/shed
    /// observability differs.
    AsyncWire,
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Fleet composition and timing.
    pub fleet: FleetConfig,
    /// Collector cadences. The paper's 5 s / 120 s are the default; large
    /// sweeps may thin the fast cadence — rate features scale uniformly.
    pub collector: CollectorConfig,
    /// Snapshot delivery path.
    pub path: CollectionPath,
    /// Driver RNG seed (behaviour replay).
    pub seed: u64,
    /// Transport fault plan for chaos runs ([`FaultPlan::none`] for a
    /// clean link). Wire paths only (`Wire` and `AsyncWire`); each device
    /// lane gets an independent fault stream derived from
    /// [`StudyConfig::seed`]. By the idempotency
    /// contract (PROTOCOL.md), the study's data output is identical for
    /// every plan the retry budget survives — only the fault/retry metrics
    /// differ.
    pub faults: FaultPlan,
}

impl StudyConfig {
    /// Small, fast configuration for tests: a 60-device fleet with a
    /// thinned (60 s) fast cadence over the full wire path.
    pub fn test_scale() -> Self {
        StudyConfig {
            fleet: FleetConfig::test_scale(),
            collector: CollectorConfig {
                fast_period_secs: 60,
                slow_period_secs: 120,
                collect_reviews: false,
            },
            path: CollectionPath::Wire,
            seed: 11,
            faults: FaultPlan::none(),
        }
    }

    /// Paper-scale configuration: 803 devices, thinned fast cadence
    /// (30 s) to keep a full run in tens of seconds, direct ingestion.
    pub fn paper_scale() -> Self {
        StudyConfig {
            fleet: FleetConfig::paper_scale(),
            collector: CollectorConfig {
                fast_period_secs: 30,
                slow_period_secs: 120,
                collect_reviews: false,
            },
            path: CollectionPath::Direct,
            seed: 2021,
            faults: FaultPlan::none(),
        }
    }
}

/// Per-device ground truth retained for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// The device's persona.
    pub persona: Persona,
}

/// Everything the study produces.
#[derive(Debug)]
pub struct StudyOutput {
    /// One joined observation per physical device, in fleet order.
    pub observations: Vec<DeviceObservation>,
    /// Streaming feature state aligned with `observations`: ready the
    /// moment the last snapshot lands, emits Table 1/Table 2 feature
    /// vectors bitwise-equal to the batch extractors (ARCHITECTURE.md §7).
    pub streaming: Vec<DeviceStreamState>,
    /// Ground truth aligned with `observations`.
    pub truth: Vec<GroundTruth>,
    /// The columnar (struct-of-arrays) projection of the ingested records:
    /// dictionary-encoded install/app/service IDs with contiguous
    /// per-field columns, built from the canonical sorted record vector
    /// at assemble time (ARCHITECTURE.md §9). Analyze-side scans read
    /// this instead of re-walking the row store.
    pub columnar: ColumnarSnapshots,
    /// The fleet (catalog, store, directory, VirusTotal) post-run.
    pub fleet: Fleet,
    /// Crawler statistics: total reviews collected live.
    pub reviews_crawled: usize,
    /// Server ingestion statistics.
    pub server_stats: racket_collect::server::ServerStats,
    /// Number of physical devices recovered by fingerprint coalescing.
    pub coalesced_devices: usize,
    /// Coordinated-campaign detection report, computed *incrementally*:
    /// the detector runs over the lockstep sketches the streaming engine
    /// folded at ingest time, with no re-scan of the event vectors
    /// (ARCHITECTURE.md §10). `racketstore::campaign::batch_report`
    /// recomputes the same report from the columnar install-event family;
    /// the equivalence suite pins them byte-identical. Excluded from
    /// output fingerprints (like `metrics`/`obs`, it is a derived
    /// analysis, not collected data).
    pub campaigns: CampaignReport,
    /// Pipeline wall-time and throughput metrics for this run
    /// (a [`PipelineMetrics::from_snapshot`] projection of `obs`). The
    /// only thread-count-dependent part of the output.
    pub metrics: PipelineMetrics,
    /// The run's private observability registry: every stage span
    /// (`span.fleet_gen`, `span.simulate/day`, …), fault/retry/ingest
    /// counter and shard-occupancy gauge. Private per run — never the
    /// process-global registry — so concurrent studies (e.g. the test
    /// suite) cannot pollute each other's metrics. Excluded from output
    /// fingerprints; downstream stages (dataset builders, the bench
    /// harness) keep recording into it.
    pub obs: Registry,
}

impl StudyOutput {
    /// Observations of one cohort (with their indexes).
    pub fn cohort(&self, cohort: Cohort) -> impl Iterator<Item = &DeviceObservation> {
        self.observations
            .iter()
            .zip(&self.truth)
            .filter(move |(_, t)| t.persona.cohort() == cohort)
            .map(|(o, _)| o)
    }
}

/// One device's lane through the study: the device plus all per-device
/// driver state, mutated on a worker thread without touching other lanes.
struct DeviceLane {
    /// Lane index (= fleet order); labels this lane's trace spans.
    idx: usize,
    dev: racket_agents::StudyDevice,
    collector: SnapshotCollector,
    buffer: DataBuffer,
    /// Reusable per-lane planning buffers and incremental app indexes:
    /// steady-state lane-days allocate nothing (ARCHITECTURE.md §12).
    scratch: LaneScratch,
    /// Pooled snapshot batch the collector polls into; cleared (buffers
    /// recycled) before every poll.
    batch: SnapshotBatch,
    /// The device's campaign directives expanded to timeline actions and
    /// stably sorted by time at lane setup; `directive_cursor` slices one
    /// day at a time instead of re-scanning the directive list daily.
    directive_plan: Vec<TimelineAction>,
    directive_cursor: usize,
    /// Wire-path protocol session: a fault-injected loopback link (sync
    /// wire) or a live connection into the async collection plane, plus
    /// the sequence-checked codec and retry/backoff state machine.
    wire: Option<WireLane>,
    /// Per-lane driver RNG stream (seeded from the study seed + lane index).
    rng: StdRng,
    /// Compressed bytes this lane uploaded over the wire path,
    /// retransmissions included.
    bytes_compressed: u64,
    /// Per-lane shard of the `simulate/deliver` latency histogram:
    /// recorded without synchronization on the worker thread, merged into
    /// the study registry when the lane retires (merge is commutative, so
    /// retirement order never shows in the totals).
    deliver_hist: LocalHistogram,
}

/// The study runner.
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Create a runner.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Run the complete study.
    pub fn run(&self) -> StudyOutput {
        let config = &self.config;
        // Every stage records into this run's private registry; the
        // PipelineMetrics the output carries is a projection of it.
        let obs = Registry::new();
        obs.gauge_set(keys::THREADS, rayon::current_num_threads() as u64);

        let mut fleet = {
            let _span = span!(obs, keys::SPAN_FLEET_GEN);
            Fleet::generate(config.fleet.clone())
        };

        let simulate_span = obs.span(keys::SPAN_SIMULATE);
        let mut server = CollectionServer::new(fleet.devices.iter().map(|d| d.participant));
        let mut crawler = ReviewCrawler::new();
        let sharded = match config.path {
            CollectionPath::Direct => Some(ShardedIngest::for_current_threads()),
            CollectionPath::Wire | CollectionPath::AsyncWire => None,
        };
        // Async plane: the reactor server owns its own sharded store (its
        // workers ingest into it concurrently); both drain back into the
        // aggregation server at shutdown. The worker count never shows in
        // the data output (ARCHITECTURE.md §8's equivalence contract), so
        // the default topology is always safe here.
        let async_plane = match config.path {
            CollectionPath::AsyncWire => {
                let store = Arc::new(ShardedIngest::for_current_threads());
                let srv = AsyncCollectServer::start(
                    fleet.devices.iter().map(|d| d.participant),
                    Arc::clone(&store),
                    AsyncServerConfig::default(),
                );
                Some((srv, store))
            }
            CollectionPath::Direct | CollectionPath::Wire => None,
        };

        // Sign in + per-device lane state. Sign-ins are serial (one frame
        // per device); the simulation loop below is where the time goes.
        let catalog = &fleet.catalog;
        // Review-text studies report review events in slow snapshots and
        // give campaign directives their organizer templates; both are
        // keyed (RNG-free), so text-off lanes are byte-identical.
        let collect_reviews = config.collector.collect_reviews || config.fleet.review_text;
        let textgen = config
            .fleet
            .review_text
            .then(|| racket_agents::TextGen::new(config.fleet.seed));
        let mut lanes: Vec<DeviceLane> = fleet
            .devices
            .drain(..)
            .enumerate()
            .map(|(i, d)| {
                // Uptime thins the effective cadence: a device reporting
                // half the day yields half the snapshots per day.
                let uptime = d.agent.profile.uptime.clamp(0.05, 1.0);
                let cfg = CollectorConfig {
                    fast_period_secs: ((config.collector.fast_period_secs as f64 / uptime).round()
                        as u64)
                        .max(1),
                    slow_period_secs: ((config.collector.slow_period_secs as f64 / uptime).round()
                        as u64)
                        .max(1),
                    collect_reviews,
                };
                let collector = SnapshotCollector::new(cfg, d.install_id, d.participant);
                let lane_seed = stream_seed(config.seed ^ FAULT_STREAM_SALT, i as u64);
                let wire = match config.path {
                    CollectionPath::Wire => Some(WireLane::new(
                        d.install_id,
                        d.participant,
                        config.faults,
                        RetryPolicy::default(),
                        lane_seed,
                    )),
                    // Same per-lane fault stream as the sync path: the
                    // connection's two fault injectors are seeded exactly
                    // as a loopback lane's would be, so a chaos plan
                    // perturbs both paths identically.
                    CollectionPath::AsyncWire => {
                        let (srv, _) = async_plane.as_ref().expect("async plane is running");
                        Some(WireLane::new_async(
                            d.install_id,
                            d.participant,
                            RetryPolicy::default(),
                            lane_seed,
                            srv.connect(config.faults, lane_seed),
                        ))
                    }
                    CollectionPath::Direct => None,
                };
                // Seed the lane's incremental app indexes from the
                // post-history device state and pre-expand its campaign
                // directives into a time-sorted plan (both RNG-free).
                let mut scratch = LaneScratch::new();
                scratch.seed_indexes(&d.device, catalog, d.persona());
                let directive_plan =
                    expand_directives(&d.directives, d.agent.gmail_identities(), textgen.as_ref());
                DeviceLane {
                    idx: i,
                    dev: d,
                    collector,
                    buffer: DataBuffer::new(),
                    scratch,
                    batch: SnapshotBatch::new(),
                    directive_plan,
                    directive_cursor: 0,
                    wire,
                    rng: StdRng::seed_from_u64(stream_seed(
                        config.seed ^ DRIVER_STREAM_SALT,
                        i as u64,
                    )),
                    bytes_compressed: 0,
                    deliver_hist: LocalHistogram::new(),
                }
            })
            .collect();

        {
            let _span = obs.span("simulate/sign_in");
            for lane in &mut lanes {
                match &mut lane.wire {
                    Some(wire) => {
                        let accepted = wire
                            .sign_in(&mut |m| server.handle(m))
                            .expect("sign-in retry budget exhausted");
                        assert!(accepted, "study participants are registered");
                    }
                    None => {
                        server.handle(Message::SignIn {
                            participant: lane.dev.participant,
                            install: lane.dev.install_id,
                        });
                    }
                }
            }
        }

        // ---- main loop: one study day at a time, all device lanes in ------
        // ---- parallel, reviews merged serially in lane order --------------
        let server = parking_lot::Mutex::new(server);
        let study_start = config.fleet.study_start();
        let horizon = config.fleet.horizon();
        let total_days = config.fleet.max_study_days;
        // Cross-lane crawl set, maintained incrementally: how many lanes
        // currently have each app installed. Seeded from the post-history
        // fleet, then folded forward from each day's install/uninstall
        // deltas (a commutative count merge, applied serially in lane
        // order like the reviews). Membership — and therefore the crawl —
        // is identical to the per-crawl cross-lane rebuild it replaces;
        // `crawl_all` is order-insensitive (per-app cursor state only).
        let mut crawl_counts: BTreeMap<AppId, u32> = BTreeMap::new();
        for lane in &lanes {
            for info in lane.dev.device.installed_apps() {
                *crawl_counts.entry(info.app).or_insert(0) += 1;
            }
        }
        for day in 0..total_days {
            let _day_span = span!(obs, "simulate/day", day = day);
            let day_start = study_start + SimDuration::from_days(day);
            lanes.par_iter_mut().for_each(|lane| {
                // Lane spans run on rayon workers; the slash path (not
                // any thread-local stack) is what nests them under the
                // day in the timing tree.
                let _lane_span = span!(obs, "simulate/day/lane", device = lane.idx);
                Self::run_lane_day(
                    lane,
                    catalog,
                    day_start,
                    horizon,
                    sharded.as_ref(),
                    &server,
                    config.path,
                );
            });
            // Reviews post serially in lane order: the store's pagination
            // (and therefore the crawler) sees one canonical posting order.
            // The same pass folds each lane's install/uninstall deltas
            // into the crawl-set counts.
            for lane in &mut lanes {
                for review in lane.scratch.reviews.drain(..) {
                    fleet.store.post(review);
                }
                for &(app, installed) in &lane.scratch.installed_deltas {
                    if installed {
                        *crawl_counts.entry(app).or_insert(0) += 1;
                    } else if let Some(n) = crawl_counts.get_mut(&app) {
                        *n -= 1;
                        if *n == 0 {
                            crawl_counts.remove(&app);
                        }
                    }
                }
            }

            // 12-hourly review crawl over apps installed on participant
            // devices (§5); we run it at day granularity against both
            // half-day marks.
            for half in 0..2 {
                let t = day_start + SimDuration::from_hours(12 * half);
                if crawler.is_due(t) {
                    crawler.crawl_all(&fleet.store, crawl_counts.keys().copied(), t);
                }
            }
        }

        // Final buffer flush (wire path only has residue in buffers). Also
        // the resume point for any file whose retry budget ran out during
        // the day loop: keep flushing until the lane drains (bounded — a
        // fault plan the budget cannot beat would be a test bug, so cap
        // the rounds and let the exhaustion counter surface it).
        {
            let _span = obs.span("simulate/flush");
            for lane in &mut lanes {
                lane.buffer.flush();
                if let Some(wire) = lane.wire.as_mut() {
                    for _ in 0..8 {
                        lane.bytes_compressed +=
                            wire.upload_pending(&mut lane.buffer, &mut |m| server.lock().handle(m));
                        if lane.buffer.pending_count() == 0 {
                            break;
                        }
                    }
                }
            }
        }
        let mut server = server.into_inner();

        // Lane retirement: chaos/retry counters and the per-lane deliver
        // histogram shards fold into the registry. Everything here is a
        // commutative add, so lane order cannot show in the totals.
        let deliver_hist = obs.histogram("span.simulate/deliver");
        let serialize_hist = obs.histogram("span.simulate/deliver/serialize");
        let compress_hist = obs.histogram("span.simulate/deliver/compress");
        let hash_hist = obs.histogram("span.simulate/deliver/hash");
        let frame_hist = obs.histogram("span.simulate/deliver/frame");
        for lane in &lanes {
            if let Some(wire) = &lane.wire {
                wire.stats().record_to(&obs);
                wire.fault_stats().record_to(&obs);
                // Wire-path kernel shards: ack-hash verification and frame
                // encoding live on the lane.
                hash_hist.merge_local(&wire.timers.hash);
                frame_hist.merge_local(&wire.timers.frame);
            }
            // Buffer-side kernel shards: snapshot serialization and LZSS
            // compression (recorded on both direct and wire paths).
            serialize_hist.merge_local(&lane.buffer.timers.serialize);
            compress_hist.merge_local(&lane.buffer.timers.compress);
            obs.add(keys::BYTES_COMPRESSED, lane.bytes_compressed);
            deliver_hist.merge_local(&lane.deliver_hist);
        }

        // Devices return to the fleet in lane (= fleet) order.
        fleet.devices = lanes.into_iter().map(|l| l.dev).collect();

        // Sharded direct-path records converge into the server table.
        if let Some(sharded) = sharded {
            let _span = obs.span("simulate/shard_merge");
            sharded.record_occupancy_to(&obs);
            sharded.merge_into(&mut server);
        }
        // Async-plane teardown: stop the reactor workers (their reports —
        // shed/stall/queue-depth counters and server spans — land in the
        // registry), then drain the plane's sharded store and protocol
        // stats into the aggregation server. Every lane has fully drained
        // by now, so the workers' shutdown sweep only flushes queued
        // duplicate retransmissions, which the idempotent ingest absorbs.
        if let Some((srv, store)) = async_plane {
            let _span = obs.span("simulate/async_shutdown");
            let async_stats = srv.shutdown(&obs);
            let store = Arc::try_unwrap(store)
                .expect("workers joined at shutdown; the driver holds the last reference");
            store.record_occupancy_to(&obs);
            store.merge_into(&mut server);
            server.absorb_stats(&async_stats);
        }
        server.stats().record_to(&obs);
        drop(simulate_span);

        // ---- assemble the measurement database ----------------------------
        let assemble_span = obs.span(keys::SPAN_ASSEMBLE);
        // Canonical record order: sorted by install ID (HashMap iteration
        // order must never reach coalescing, which is order-sensitive).
        let mut records: Vec<InstallRecord> = server.records().cloned().collect();
        records.sort_by_key(|r| r.install_id);
        let coalesced_devices = {
            let _span = obs.span("assemble/coalesce");
            let candidates: Vec<CandidateInstall> =
                records.iter().map(CandidateInstall::from_record).collect();
            coalesce_installs(candidates).len()
        };

        // Columnar projection: records are in canonical sorted order here,
        // so the dictionaries assign the same codes on every run.
        let columnar = {
            let _span = obs.span(keys::SPAN_COLUMNARIZE);
            ColumnarSnapshots::from_records(&records)
        };

        let preinstalled: HashSet<AppId> = fleet.catalog.system_apps().iter().copied().collect();
        let by_install: HashMap<_, _> = records.into_iter().map(|r| (r.install_id, r)).collect();

        // Per-device joins (Google-ID crawl, review join, VirusTotal) are
        // independent — one observation per device, built in parallel.
        let join_span = obs.span("assemble/join");
        let joined: Vec<Option<(DeviceObservation, DeviceStreamState, GroundTruth)>> = fleet
            .devices
            .par_iter()
            .map(|dev| {
                // Devices that never snapshotted have no record to join.
                let record = by_install.get(&dev.install_id)?;
                // Google-ID crawl: resolve every Gmail account on the device.
                let google_ids: Vec<_> = record
                    .accounts
                    .iter()
                    .filter(|a| a.service.is_gmail())
                    .filter_map(|a| fleet.directory.lookup(a.id))
                    .collect();
                // Review join: everything those IDs ever posted (the
                // 217k-review account crawl of §5), grouped by app.
                let mut reviews_by_app: HashMap<AppId, Vec<Review>> = HashMap::new();
                for &gid in &google_ids {
                    for r in fleet.store.reviews_by(gid) {
                        reviews_by_app.entry(r.app).or_default().push(r.clone());
                    }
                }
                // VirusTotal reports for every app ever observed installed.
                let vt_flags: HashMap<AppId, Option<u8>> = record
                    .apps
                    .values()
                    .map(|info| {
                        let report = fleet.virustotal.query(info.apk_hash);
                        (info.app, report.map(|r| r.flags))
                    })
                    .collect();

                let observation = DeviceObservation {
                    record: record.clone(),
                    monitoring: dev.monitoring,
                    google_ids,
                    reviews_by_app,
                    vt_flags,
                    preinstalled: preinstalled.clone(),
                };
                // Streaming feature state: the review-side aggregates fold
                // here (the snapshot-side half already lives on the
                // record, folded at ingest), so the feature vectors are
                // ready without any later re-scan.
                let stream_state = {
                    let _span = span!(
                        obs,
                        keys::SPAN_STREAM_FOLD,
                        device = observation.record.install_id.0
                    );
                    DeviceStreamState::fold(&observation)
                };
                Some((
                    observation,
                    stream_state,
                    GroundTruth {
                        persona: dev.persona(),
                    },
                ))
            })
            .collect();
        drop(join_span);
        let mut observations = Vec::with_capacity(joined.len());
        let mut streaming = Vec::with_capacity(joined.len());
        let mut truth = Vec::with_capacity(joined.len());
        for (observation, stream_state, gt) in joined.into_iter().flatten() {
            observations.push(observation);
            streaming.push(stream_state);
            truth.push(gt);
        }
        drop(assemble_span);

        // Incremental campaign detection: the per-install lockstep
        // sketches were folded at ingest (StreamAggregates::note_install),
        // so the detector reads them straight off the records — no event
        // re-scan. The text sketches folded from reported reviews
        // (StreamAggregates::note_review) ride along as the second
        // candidate source; with review collection off every text sketch
        // is empty and the slice stays empty, so the detector runs the
        // event-only path bit-for-bit. The batch path
        // (`crate::campaign::batch_report`) rebuilds the same sketches
        // from the columnar families; both feed the identical
        // `detect_with_text` kernel.
        let campaigns = {
            let _span = obs.span(keys::SPAN_CAMPAIGN_INCREMENTAL);
            let inputs: Vec<(racket_types::InstallId, &CampaignSketch)> = observations
                .iter()
                .map(|o| (o.record.install_id, o.record.stream.campaign()))
                .collect();
            let texts: Vec<(racket_types::InstallId, &racket_text::TextSketch)> = observations
                .iter()
                .filter(|o| !o.record.stream.text().is_empty())
                .map(|o| (o.record.install_id, o.record.stream.text()))
                .collect();
            detect_with_text(&inputs, &texts, &DetectorConfig::default(), Some(&obs))
        };

        let metrics = PipelineMetrics::from_snapshot(&obs.snapshot());
        StudyOutput {
            observations,
            streaming,
            truth,
            columnar,
            campaigns,
            reviews_crawled: crawler.total_collected(),
            server_stats: server.stats(),
            coalesced_devices,
            fleet,
            metrics,
            obs,
        }
    }

    /// Drive one device lane through one study day: plan, sample snapshots
    /// at every action boundary, deliver them, apply the actions. The
    /// day's reviews land in `lane.scratch.reviews` and its crawl-set
    /// membership deltas in `lane.scratch.installed_deltas`; the caller
    /// drains both serially, in lane order.
    fn run_lane_day(
        lane: &mut DeviceLane,
        catalog: &racket_playstore::AppCatalog,
        day_start: SimTime,
        horizon: SimTime,
        sharded: Option<&ShardedIngest>,
        server: &parking_lot::Mutex<CollectionServer>,
        path: CollectionPath,
    ) {
        lane.scratch.begin_day();
        if !lane.dev.monitoring.contains(day_start) {
            return;
        }
        let persona = lane.dev.persona();
        lane.dev.agent.plan_day_into(
            &lane.dev.device,
            catalog,
            day_start,
            horizon,
            &mut lane.rng,
            &mut lane.scratch,
        );
        // Merge campaign jobs due inside this planning day: a cursor over
        // the pre-expanded, time-sorted directive plan (built at lane
        // setup) replaces the old scan of every directive every day.
        // Directives are precomputed on the campaign RNG stream (never
        // the lane stream), so injection shifts no organic draw; the
        // stable sort keeps the organic order on time ties, with
        // directives after — and within the injected slice, time ties
        // keep directive order, exactly as the per-day scan produced.
        if !lane.directive_plan.is_empty() {
            let plan_end = day_start + SimDuration::from_days(1);
            while lane.directive_cursor < lane.directive_plan.len()
                && lane.directive_plan[lane.directive_cursor].time < day_start
            {
                lane.directive_cursor += 1;
            }
            let mut j = lane.directive_cursor;
            while j < lane.directive_plan.len() && lane.directive_plan[j].time < plan_end {
                lane.scratch.actions.push(lane.directive_plan[j].clone());
                j += 1;
            }
            if j > lane.directive_cursor {
                lane.directive_cursor = j;
                lane.scratch.actions.sort_by_key(|ta| ta.time);
            }
        }
        let day_end = (day_start + SimDuration::from_days(1)).min(lane.dev.monitoring.end);
        // The action list is moved out for the loop (deliver/apply need
        // the rest of the lane mutably) and moved back afterwards so its
        // capacity is reused tomorrow.
        let actions = std::mem::take(&mut lane.scratch.actions);
        for ta in &actions {
            if ta.time >= day_end {
                continue;
            }
            // Sample everything due before the action, then apply.
            lane.batch.clear();
            lane.collector
                .poll_into(&lane.dev.device, ta.time, &mut lane.batch);
            Self::deliver(lane, sharded, server, path);
            // Install/uninstall actions feed the incremental indexes and
            // the crawl-set deltas — guarded on the device's pre-action
            // state, so a directive re-install or a no-op uninstall
            // changes neither membership count.
            match &ta.action {
                Action::Install { app } => {
                    let newly = !lane.dev.device.is_installed(*app);
                    apply_action_collecting(
                        &mut lane.dev.device,
                        &mut lane.scratch.reviews,
                        catalog,
                        ta,
                        &mut lane.rng,
                    );
                    if newly {
                        lane.scratch.installed_deltas.push((*app, true));
                    }
                    lane.scratch.note_install(*app, catalog, persona);
                }
                Action::Uninstall { app } => {
                    let was_installed = lane.dev.device.is_installed(*app);
                    apply_action_collecting(
                        &mut lane.dev.device,
                        &mut lane.scratch.reviews,
                        catalog,
                        ta,
                        &mut lane.rng,
                    );
                    if was_installed {
                        lane.scratch.installed_deltas.push((*app, false));
                        lane.scratch.note_uninstall(*app);
                    }
                }
                _ => {
                    apply_action_collecting(
                        &mut lane.dev.device,
                        &mut lane.scratch.reviews,
                        catalog,
                        ta,
                        &mut lane.rng,
                    );
                }
            }
        }
        // Close out the day.
        let last_tick = SimTime::from_secs(day_end.as_secs().saturating_sub(1));
        lane.batch.clear();
        lane.collector
            .poll_into(&lane.dev.device, last_tick, &mut lane.batch);
        Self::deliver(lane, sharded, server, path);
        lane.scratch.actions = actions;
    }

    /// Deliver the lane's batched snapshots along the configured path.
    ///
    /// Direct: straight into the sharded store (concurrent across lanes).
    /// Wire: through the lane's buffer and transport, with the server
    /// behind a mutex — per-install aggregation is disjoint across lanes,
    /// so the lock order cannot change the result.
    fn deliver(
        lane: &mut DeviceLane,
        sharded: Option<&ShardedIngest>,
        server: &parking_lot::Mutex<CollectionServer>,
        path: CollectionPath,
    ) {
        // Timed into the lane's local histogram shard, not the shared
        // registry: delivery is the per-lane hot path, and a shard costs
        // one unsynchronized array bump per call.
        let start = Instant::now();
        match path {
            CollectionPath::Direct => {
                sharded
                    .expect("direct path has a sharded store")
                    .ingest_batch(lane.batch.snapshots());
            }
            CollectionPath::Wire | CollectionPath::AsyncWire => {
                for s in lane.batch.snapshots() {
                    lane.buffer.push(s);
                }
                if lane.buffer.pending_count() > 0 {
                    // Upload any rotated files through the retry/backoff
                    // state machine. Files whose retry budget runs out stay
                    // queued and resume on the next delivery tick or the
                    // final flush; replays are absorbed by the server's
                    // idempotent ingest.
                    let wire = lane.wire.as_mut().expect("wire path without lane");
                    lane.bytes_compressed +=
                        wire.upload_pending(&mut lane.buffer, &mut |m| server.lock().handle(m));
                }
            }
        }
        lane.deliver_hist.record(start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_test_study() -> StudyOutput {
        Study::new(StudyConfig::test_scale()).run()
    }

    #[test]
    fn study_produces_observations_for_every_device() {
        let out = run_test_study();
        assert_eq!(out.observations.len(), 60);
        assert_eq!(out.truth.len(), 60);
        assert_eq!(out.cohort(Cohort::Regular).count(), 20);
        assert_eq!(out.cohort(Cohort::Worker).count(), 40);
    }

    #[test]
    fn wire_path_ingests_files_and_snapshots() {
        let out = run_test_study();
        assert!(out.server_stats.files > 0, "rotated files uploaded");
        assert!(out.server_stats.snapshots > 1000, "snapshots ingested");
        assert_eq!(out.server_stats.bad_uploads, 0);
        assert_eq!(out.server_stats.sign_ins, 60);
    }

    #[test]
    fn observations_have_accounts_and_reviews() {
        let out = run_test_study();
        let worker_reviews: usize = out.cohort(Cohort::Worker).map(|o| o.total_reviews()).sum();
        let regular_reviews: usize = out.cohort(Cohort::Regular).map(|o| o.total_reviews()).sum();
        assert!(worker_reviews > 20 * regular_reviews.max(1));
        // Every observation saw at least two days of snapshots.
        for o in &out.observations {
            assert!(o.record.active_days() >= 2);
        }
    }

    #[test]
    fn crawler_collected_live_reviews() {
        let out = run_test_study();
        assert!(out.reviews_crawled > 0);
    }

    #[test]
    fn coalescing_recovers_physical_devices() {
        let out = run_test_study();
        // One install per device in this scenario.
        assert_eq!(out.coalesced_devices, 60);
    }

    #[test]
    fn wire_path_reports_metrics() {
        let out = run_test_study();
        assert_eq!(out.metrics.snapshots_ingested, out.server_stats.snapshots);
        assert!(
            out.metrics.bytes_compressed > 0,
            "wire path compresses uploads"
        );
        assert!(
            out.metrics.shard_occupancy.is_empty(),
            "wire path is unsharded"
        );
        assert!(out.metrics.simulate_secs > 0.0);
        assert!(out.metrics.threads >= 1);
    }

    #[test]
    fn clean_wire_run_reports_zero_faults_and_retries() {
        let out = run_test_study();
        assert_eq!(out.metrics.faults.total(), 0);
        assert!(out.metrics.upload_attempts > 0, "exchanges are counted");
        assert_eq!(out.metrics.upload_retries, 0);
        assert_eq!(out.metrics.reconnects, 0);
        assert_eq!(out.metrics.backoff_ms, 0);
        assert_eq!(out.metrics.exchanges_exhausted, 0);
        assert_eq!(out.metrics.stale_frames, 0);
        assert_eq!(out.metrics.dup_files_deduped, 0);
        assert_eq!(out.server_stats.dup_files, 0);
    }

    #[test]
    fn direct_path_shards_and_matches_device_count() {
        let mut config = StudyConfig::test_scale();
        config.path = CollectionPath::Direct;
        let out = Study::new(config).run();
        assert_eq!(out.observations.len(), 60);
        assert_eq!(
            out.metrics.shard_occupancy.iter().sum::<usize>(),
            60,
            "every device's record lands on exactly one shard"
        );
        assert_eq!(
            out.metrics.bytes_compressed, 0,
            "direct path skips compression"
        );
        assert_eq!(out.metrics.snapshots_ingested, out.server_stats.snapshots);
    }

    #[test]
    fn async_wire_path_matches_sync_wire_output() {
        let sync = run_test_study();
        let mut config = StudyConfig::test_scale();
        config.path = CollectionPath::AsyncWire;
        let out = Study::new(config).run();
        // Data output identical to the sync wire path (the §8 equivalence
        // contract); dup_files is deliberately NOT compared — premature
        // retries under load inflate it without touching the data.
        assert_eq!(out.observations.len(), sync.observations.len());
        assert_eq!(out.server_stats.snapshots, sync.server_stats.snapshots);
        assert_eq!(out.server_stats.files, sync.server_stats.files);
        assert_eq!(out.server_stats.sign_ins, 60);
        assert_eq!(out.server_stats.bad_uploads, 0);
        for (x, y) in out.observations.iter().zip(&sync.observations) {
            assert_eq!(x.record.install_id, y.record.install_id);
            assert_eq!(x.record.n_fast, y.record.n_fast);
            assert_eq!(x.record.snapshots_per_day, y.record.snapshots_per_day);
        }
        assert!(
            !out.metrics.shard_occupancy.is_empty(),
            "the async plane ingests through its sharded store"
        );
        assert!(out.metrics.bytes_compressed > 0);
        assert_eq!(out.metrics.faults.total(), 0, "clean link injects nothing");
    }

    #[test]
    fn columnar_store_mirrors_the_records() {
        let out = run_test_study();
        assert_eq!(out.columnar.n_installs(), out.observations.len());
        for o in &out.observations {
            let code = out
                .columnar
                .install_code(o.record.install_id)
                .expect("every joined record was columnarized");
            assert_eq!(out.columnar.participant(code), o.record.participant);
            assert_eq!(
                out.columnar.snapshot_counts(code),
                (o.record.n_fast, o.record.n_slow)
            );
            assert_eq!(
                out.columnar.active_days(code) as usize,
                o.record.active_days()
            );
            assert_eq!(out.columnar.apps_of(code).count(), o.record.apps.len());
            assert_eq!(
                out.columnar.services_of(code).count(),
                o.record.accounts.len()
            );
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_test_study();
        let b = run_test_study();
        assert_eq!(a.server_stats.snapshots, b.server_stats.snapshots);
        assert_eq!(a.reviews_crawled, b.reviews_crawled);
        for (x, y) in a.observations.iter().zip(&b.observations) {
            assert_eq!(x.record.n_fast, y.record.n_fast);
            assert_eq!(x.total_reviews(), y.total_reviews());
        }
    }
}
