//! Batch review-text sketch rebuild and canonical text fingerprints.
//!
//! The streaming engine folds one [`racket_text::TextSketch`] per install
//! at snapshot-ingest time (`StreamAggregates::note_review`); this module
//! is the batch half of that contract: [`batch_text_sketches`] rebuilds
//! every sketch from the columnar review column family, and the two
//! fingerprint helpers render either side canonically so the differential
//! harness (`tests/text_equivalence.rs`, `tests/chaos.rs`) can compare
//! them byte for byte across thread counts, delivery paths and fault
//! profiles.

use crate::study::StudyOutput;
use racket_text::TextSketch;
use racket_types::metrics::keys;
use racket_types::InstallId;

/// Rebuild one text sketch per reviewed install from the columnar review
/// family (`campaign/text_rebuild` span). Installs without reported
/// reviews are omitted, mirroring the incremental path's non-empty filter
/// — so the two sides cover the identical install set.
pub fn batch_text_sketches(out: &StudyOutput) -> Vec<(InstallId, TextSketch)> {
    let _span = out.obs.span(keys::SPAN_TEXT_REBUILD);
    let mut sketches = Vec::new();
    for code in 0..out.columnar.n_installs() as u32 {
        let mut sk = TextSketch::default();
        for e in out.columnar.reviews_of(code) {
            sk.observe(
                e.app.raw(),
                e.reviewer.raw(),
                e.time.as_secs(),
                e.rating.stars(),
                e.text,
            );
        }
        if !sk.is_empty() {
            sketches.push((out.columnar.install_id(code), sk));
        }
    }
    sketches
}

/// Canonical rendering of one install's text-sketch state: every review
/// row plus a fold of the install-level MinHash signature. Byte-identical
/// iff the sketches are identical (rows are a B-tree set, the signature
/// a fixed-width vector).
fn render_sketch(out: &mut String, id: InstallId, sk: &TextSketch) {
    use std::fmt::Write;
    let sig = sk
        .minhash()
        .rows()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, &r| {
            (acc ^ r).wrapping_mul(0x100_0000_01b3)
        });
    let _ = writeln!(
        out,
        "install={} reviews={} sig={sig:016x}",
        id.0,
        sk.n_reviews()
    );
    for r in sk.rows() {
        let _ = writeln!(
            out,
            "  app={} who={} t={} stars={} len={} sent={} sim={:016x}",
            r.app, r.reviewer, r.time, r.rating, r.len, r.sentiment, r.simhash
        );
    }
}

/// Canonical fingerprint of the *streaming* per-install text state, in
/// ascending install order. Empty sketches are skipped; a text-off study
/// therefore fingerprints as the bare `texted_installs=0` header.
pub fn streaming_text_fingerprint(out: &StudyOutput) -> String {
    let texted: Vec<(InstallId, &TextSketch)> = out
        .observations
        .iter()
        .filter(|o| !o.record.stream.text().is_empty())
        .map(|o| (o.record.install_id, o.record.stream.text()))
        .collect();
    fingerprint_of(texted)
}

/// Canonical fingerprint of the *batch-rebuilt* text state — same
/// rendering as [`streaming_text_fingerprint`], so streaming ≡ batch is
/// a string equality.
pub fn batch_text_fingerprint(out: &StudyOutput) -> String {
    let sketches = batch_text_sketches(out);
    fingerprint_of(sketches.iter().map(|(id, s)| (*id, s)).collect())
}

fn fingerprint_of(mut texted: Vec<(InstallId, &TextSketch)>) -> String {
    use std::fmt::Write;
    texted.sort_by_key(|(id, _)| *id);
    let total: usize = texted.iter().map(|(_, s)| s.n_reviews()).sum();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "texted_installs={} total_reviews={}",
        texted.len(),
        total
    );
    for (id, sk) in texted {
        render_sketch(&mut s, id, sk);
    }
    s
}
