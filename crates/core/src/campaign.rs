//! Batch campaign detection and ground-truth evaluation.
//!
//! The study already runs the lockstep detector *incrementally* — over the
//! [`racket_campaign::CampaignSketch`]es the streaming engine folded at
//! snapshot-ingest time ([`crate::StudyOutput::campaigns`]). This module is
//! the batch half of that contract: [`batch_report`] rebuilds every sketch
//! from the columnar install-event and review families and feeds the
//! identical [`racket_campaign::detect_with_text()`] kernel, so the two
//! reports are byte-equal by construction (pinned across thread counts and
//! delivery paths by `tests/campaign_equivalence.rs`). [`evaluate`] scores either report
//! against the fleet's [`racket_agents::CampaignSpec`] ground truth for the
//! EXPERIMENTS.md recall/precision-vs-stealth table.

use crate::study::StudyOutput;
use racket_campaign::{detect_with_text, CampaignReport, CampaignSketch, DetectorConfig};
use racket_text::TextSketch;
use racket_types::metrics::keys;
use racket_types::InstallId;
use std::collections::BTreeSet;

/// Run the lockstep detector in batch mode: rebuild one sketch per install
/// from the columnar install-event column family (`campaign/shingle` span,
/// `campaign.shingles` counter), then hand the sketches to the same
/// [`detect()`](racket_campaign::detect::detect) kernel the incremental
/// path uses.
pub fn batch_report(out: &StudyOutput) -> CampaignReport {
    batch_report_with(out, &DetectorConfig::default())
}

/// [`batch_report`] with an explicit detector configuration.
pub fn batch_report_with(out: &StudyOutput, cfg: &DetectorConfig) -> CampaignReport {
    let obs = &out.obs;
    let mut sketches: Vec<(InstallId, CampaignSketch)> =
        Vec::with_capacity(out.columnar.n_installs());
    {
        let _span = obs.span(keys::SPAN_CAMPAIGN_SHINGLE);
        for code in 0..out.columnar.n_installs() as u32 {
            let mut sk = CampaignSketch::new(cfg.shingle);
            for (app, t) in out.columnar.install_events_of(code) {
                sk.observe(app, t);
            }
            sketches.push((out.columnar.install_id(code), sk));
        }
        obs.add(
            keys::CAMPAIGN_SHINGLES,
            sketches.iter().map(|(_, s)| s.n_shingles() as u64).sum(),
        );
    }
    let inputs: Vec<(InstallId, &CampaignSketch)> =
        sketches.iter().map(|(id, s)| (*id, s)).collect();
    // The text candidate source gets the same batch treatment: sketches
    // rebuilt from the columnar review family. With review collection off
    // the rebuild yields nothing and the detector runs the event-only
    // path bit-for-bit, matching the incremental side.
    let texts: Vec<(InstallId, TextSketch)> = crate::text::batch_text_sketches(out);
    let text_inputs: Vec<(InstallId, &TextSketch)> = texts.iter().map(|(id, s)| (*id, s)).collect();
    detect_with_text(&inputs, &text_inputs, cfg, Some(obs))
}

/// Detection quality against the fleet's scheduled-campaign ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignEval {
    /// Scheduled campaigns (ground truth).
    pub n_truth: usize,
    /// Campaigns the detector reported.
    pub n_detected: usize,
    /// Ground-truth campaigns matched by at least one detected cluster
    /// (device-set Jaccard ≥ 0.5).
    pub matched_truth: usize,
    /// Detected clusters matching at least one ground-truth campaign.
    pub matched_detected: usize,
}

impl CampaignEval {
    /// Fraction of scheduled campaigns recovered (1.0 when none were
    /// scheduled — a campaign-free fleet with no detections is perfect).
    pub fn recall(&self) -> f64 {
        if self.n_truth == 0 {
            1.0
        } else {
            self.matched_truth as f64 / self.n_truth as f64
        }
    }

    /// Fraction of detected clusters that correspond to a real campaign.
    pub fn precision(&self) -> f64 {
        if self.n_detected == 0 {
            1.0
        } else {
            self.matched_detected as f64 / self.n_detected as f64
        }
    }
}

/// Match a detection report against the fleet ground truth: a detected
/// cluster counts as a ground-truth campaign when their device sets overlap
/// with Jaccard ≥ 0.5 (detected clusters may merge overlapping campaigns or
/// shed dropped-out stealth workers; exact set equality would punish both).
pub fn evaluate(report: &CampaignReport, out: &StudyOutput) -> CampaignEval {
    let truth_sets: Vec<BTreeSet<InstallId>> = out
        .fleet
        .campaigns
        .iter()
        .map(|spec| {
            spec.workers
                .iter()
                .map(|&w| out.fleet.devices[w].install_id)
                .collect()
        })
        .collect();
    let detected_sets: Vec<BTreeSet<InstallId>> = report
        .campaigns
        .iter()
        .map(|c| c.devices.iter().copied().collect())
        .collect();

    let jaccard = |a: &BTreeSet<InstallId>, b: &BTreeSet<InstallId>| -> f64 {
        let inter = a.intersection(b).count();
        let union = a.len() + b.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    };

    let matched_truth = truth_sets
        .iter()
        .filter(|t| detected_sets.iter().any(|d| jaccard(t, d) >= 0.5))
        .count();
    let matched_detected = detected_sets
        .iter()
        .filter(|d| truth_sets.iter().any(|t| jaccard(t, d) >= 0.5))
        .count();
    CampaignEval {
        n_truth: truth_sets.len(),
        n_detected: detected_sets.len(),
        matched_truth,
        matched_detected,
    }
}

/// Per-observation verdict surface: for each device in
/// `out.observations` order, the index of the detected campaign containing
/// it (first by campaign order), or `None` for devices outside every
/// cluster. This is what a deployment would attach to a device record next
/// to its §8 classifier verdict.
pub fn membership(report: &CampaignReport, out: &StudyOutput) -> Vec<Option<u32>> {
    out.observations
        .iter()
        .map(|o| {
            report
                .campaigns
                .iter()
                .position(|c| c.devices.binary_search(&o.record.install_id).is_ok())
                .map(|i| i as u32)
        })
        .collect()
}
