//! §8: the device classifier — detecting worker-controlled devices.
//!
//! Builds one instance per device from the §8.1 features (including the
//! *app suspiciousness* ratio computed by the trained §7 classifier),
//! balances with SMOTE, evaluates the Table 2 algorithm set under 10-fold
//! CV, reports the Figure 14 importances, and computes the Figure 15
//! organic/dedicated split over worker devices.

use crate::app_classifier::{feature_importance, table2_algorithms, AlgorithmRow, AppClassifier};
use crate::study::StudyOutput;
use racket_features::{device_features, DEVICE_FEATURE_NAMES};
use racket_ml::{cross_validate, Dataset, Resampling};
use racket_types::Cohort;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The per-device dataset of §8.2.
#[derive(Debug, Clone)]
pub struct DeviceDataset {
    /// Feature matrix + labels (1 = worker device).
    pub data: Dataset,
    /// Observation index per row.
    pub provenance: Vec<usize>,
    /// App-suspiciousness per row (kept for Figure 15).
    pub suspiciousness: Vec<f64>,
}

impl DeviceDataset {
    /// Build the dataset over devices with at least `min_days` active
    /// days (the paper keeps 178 worker + 88 regular devices with ≥ 2
    /// days of snapshots; `subsample` trims each cohort to those counts
    /// when enough devices qualify).
    pub fn build(
        out: &StudyOutput,
        app_classifier: &AppClassifier,
        min_days: usize,
        subsample: Option<(usize, usize)>,
        seed: u64,
    ) -> DeviceDataset {
        let _span = out.obs.span("features/device_dataset");
        let mut eligible: Vec<usize> = (0..out.observations.len())
            .filter(|&i| out.observations[i].record.active_days() >= min_days)
            .collect();
        if let Some((n_workers, n_regular)) = subsample {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut workers: Vec<usize> = eligible
                .iter()
                .copied()
                .filter(|&i| out.truth[i].persona.cohort() == Cohort::Worker)
                .collect();
            let mut regular: Vec<usize> = eligible
                .iter()
                .copied()
                .filter(|&i| out.truth[i].persona.cohort() == Cohort::Regular)
                .collect();
            workers.shuffle(&mut rng);
            regular.shuffle(&mut rng);
            workers.truncate(n_workers);
            regular.truncate(n_regular);
            eligible = workers.into_iter().chain(regular).collect();
            eligible.sort_unstable();
        }

        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut suspiciousness = Vec::new();
        for &i in &eligible {
            let obs = &out.observations[i];
            let susp = app_classifier.device_suspiciousness(obs);
            x.push(device_features(obs, susp));
            y.push(u8::from(out.truth[i].persona.cohort() == Cohort::Worker));
            suspiciousness.push(susp);
        }
        DeviceDataset {
            data: Dataset::new(
                x,
                y,
                DEVICE_FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
            ),
            provenance: eligible,
            suspiciousness,
        }
    }
}

/// Suspiciousness above which a worker device counts as
/// *promotion-dedicated* in the Figure 15 split.
///
/// The paper's dedicated devices have "all their apps" flagged; our
/// suspiciousness denominator includes the ~dozen preinstalled system
/// packages (per the paper's own §8.2 examples of personal use), which a
/// well-generalizing classifier almost always reads as personal. A device
/// whose *installed* apps are all promotion-indicative therefore lands
/// just below 1.0 — 0.9 is the corresponding cut once system packages are
/// discounted.
pub const DEDICATED_SUSPICIOUSNESS: f64 = 0.9;

/// The Figure 15 organic/dedicated breakdown of worker devices.
#[derive(Debug, Clone)]
pub struct OrganicSplit {
    /// Per worker device: (suspiciousness, installed-and-reviewed count).
    pub points: Vec<(f64, usize)>,
    /// Worker devices with clearly personal app use
    /// (suspiciousness below [`DEDICATED_SUSPICIOUSNESS`]) — the paper's
    /// 123/178 ≈ 69.1%.
    pub organic: usize,
    /// Worker devices whose installed apps are (essentially) all
    /// promotion-indicative — the paper's 55/178.
    pub dedicated: usize,
}

impl OrganicSplit {
    /// Fraction of worker devices with organic-indicative behaviour.
    pub fn organic_fraction(&self) -> f64 {
        let total = self.organic + self.dedicated;
        if total == 0 {
            return 0.0;
        }
        self.organic as f64 / total as f64
    }
}

/// The §8 evaluation report.
#[derive(Debug)]
pub struct DeviceClassifierReport {
    /// Table 2 rows, in paper order (XGB, RF, SVM, KNN, LVQ).
    pub table: Vec<AlgorithmRow>,
    /// Figure 14 feature importances, sorted descending.
    pub importance: Vec<(String, f64)>,
    /// Figure 15 split.
    pub split: OrganicSplit,
    /// Worker devices in the dataset.
    pub n_workers: usize,
    /// Regular devices in the dataset.
    pub n_regular: usize,
}

/// Evaluate the §8 pipeline: 10-fold CV with SMOTE (the paper's default;
/// pass a different [`Resampling`] for the §8.2 ablations).
pub fn evaluate(dataset: &DeviceDataset, resampling: Resampling) -> DeviceClassifierReport {
    let mut table = Vec::new();
    for (name, factory) in table2_algorithms() {
        let report = cross_validate(factory.as_ref(), &dataset.data, 10, 1, resampling, 77);
        table.push(AlgorithmRow {
            name,
            metrics: report.metrics,
        });
    }

    let importance = feature_importance(&dataset.data);

    // Figure 15 over the worker rows.
    let mut points = Vec::new();
    let mut organic = 0;
    let mut dedicated = 0;
    let reviewed_col = DEVICE_FEATURE_NAMES
        .iter()
        .position(|&n| n == "n_installed_and_reviewed")
        .expect("feature present");
    for (row, (&label, &susp)) in dataset
        .data
        .x
        .iter()
        .zip(dataset.data.y.iter().zip(&dataset.suspiciousness))
    {
        if label != 1 {
            continue;
        }
        points.push((susp, row[reviewed_col] as usize));
        if susp >= DEDICATED_SUSPICIOUSNESS {
            dedicated += 1;
        } else {
            organic += 1;
        }
    }

    DeviceClassifierReport {
        table,
        importance,
        split: OrganicSplit {
            points,
            organic,
            dedicated,
        },
        n_workers: dataset.data.n_positive(),
        n_regular: dataset.data.n_negative(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_classifier::{AppClassifier, AppUsageDataset};
    use crate::labeling::{label_apps, LabelingConfig};
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn pipeline() -> &'static (StudyOutput, DeviceDataset) {
        static P: OnceLock<(StudyOutput, DeviceDataset)> = OnceLock::new();
        P.get_or_init(|| {
            let out = Study::new(StudyConfig::test_scale()).run();
            let labels = label_apps(&out, &LabelingConfig::test_scale());
            let app_ds = AppUsageDataset::build(&out, &labels);
            let clf = AppClassifier::train(&app_ds);
            let ds = DeviceDataset::build(&out, &clf, 2, None, 5);
            (out, ds)
        })
    }

    #[test]
    fn dataset_covers_both_cohorts() {
        let (_, ds) = pipeline();
        assert!(
            ds.data.n_positive() >= 30,
            "workers: {}",
            ds.data.n_positive()
        );
        assert!(
            ds.data.n_negative() >= 15,
            "regular: {}",
            ds.data.n_negative()
        );
        assert_eq!(ds.provenance.len(), ds.data.len());
    }

    #[test]
    fn xgb_detects_worker_devices_like_table_2() {
        let (_, ds) = pipeline();
        let report = evaluate(ds, Resampling::Smote { k: 5 });
        let xgb = &report.table[0];
        assert_eq!(xgb.name, "XGB");
        assert!(
            xgb.metrics.f1 > 0.85,
            "XGB F1 = {:.4} (paper: 0.9529)",
            xgb.metrics.f1
        );
        assert!(
            xgb.metrics.auc > 0.85,
            "XGB AUC = {:.4} (paper: 0.9455)",
            xgb.metrics.auc
        );
    }

    #[test]
    fn figure_15_split_has_material_organic_share() {
        let (_, ds) = pipeline();
        let report = evaluate(ds, Resampling::Smote { k: 5 });
        let split = &report.split;
        assert_eq!(split.organic + split.dedicated, report.n_workers);
        // The paper's 69.1% organic majority (84% at paper scale, see
        // EXPERIMENTS.md) needs the full worker population; the 40-worker
        // test fleet trains the §7 classifier on a tiny holdout, which
        // inflates suspiciousness and lowers this fraction.
        assert!(
            split.organic_fraction() > 0.3,
            "organic fraction {:.2} (paper: 0.691)",
            split.organic_fraction()
        );
    }

    #[test]
    fn importance_highlights_review_and_suspiciousness_features() {
        let (_, ds) = pipeline();
        let report = evaluate(ds, Resampling::Smote { k: 5 });
        let top5: Vec<&str> = report
            .importance
            .iter()
            .take(5)
            .map(|(n, _)| n.as_str())
            .collect();
        let expected_any = [
            "n_total_apps_reviewed",
            "app_suspiciousness",
            "n_stopped_apps",
            "avg_reviews_per_account",
            "n_installed_and_reviewed",
            "n_gmail_accounts",
        ];
        assert!(
            top5.iter().any(|n| expected_any.contains(n)),
            "top-5 {top5:?} misses all Figure 14 features"
        );
    }

    #[test]
    fn subsampling_trims_cohorts() {
        let (out, _) = pipeline();
        let labels = label_apps(out, &LabelingConfig::test_scale());
        let app_ds = AppUsageDataset::build(out, &labels);
        let clf = AppClassifier::train(&app_ds);
        let ds = DeviceDataset::build(out, &clf, 2, Some((10, 5)), 5);
        assert_eq!(ds.data.n_positive(), 10);
        assert_eq!(ds.data.n_negative(), 5);
    }
}
