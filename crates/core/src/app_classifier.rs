//! §7: the app classifier — detecting fake installs and reviews.
//!
//! Builds the (app, device) instance dataset from the §7.2 labels, trains
//! the paper's five algorithms (XGB, RF, LR, KNN, LVQ) under repeated
//! stratified 10-fold cross-validation, reports Table 1 and the Figure 13
//! importance ranking, and exposes a deployable [`AppClassifier`] that the
//! device pipeline (§8) uses to compute *app suspiciousness*.

use crate::labeling::AppLabels;
use crate::study::StudyOutput;
use racket_features::{app_feature_names, app_features};
use racket_ml::{
    cross_validate, Classifier, Dataset, FeatureImportance, GradientBoosting,
    GradientBoostingParams, KNearestNeighbors, LinearSvm, LinearSvmParams, LogisticRegression,
    LogisticRegressionParams, Lvq, LvqParams, Metrics, RandomForest, RandomForestParams,
    Resampling,
};
use racket_types::AppId;

/// The labeled (app, device) instance dataset of §7.2.
#[derive(Debug, Clone)]
pub struct AppUsageDataset {
    /// The feature matrix + labels (1 = promotion instance).
    pub data: Dataset,
    /// `(observation index, app)` provenance per row.
    pub provenance: Vec<(usize, AppId)>,
}

impl AppUsageDataset {
    /// Build instances: every (labeled app, holdout device) pair where the
    /// device observed the app. Promotion instances get label 1.
    ///
    /// Instances come from the *holdout* devices only — the paper's
    /// "train-and-validate" selection (38 worker + 37 regular devices
    /// yielding 2,994 + 345 instances). The trained classifier is then
    /// applied to the full fleet, including devices it never saw, when the
    /// §8 pipeline computes app suspiciousness.
    pub fn build(out: &StudyOutput, labels: &AppLabels) -> AppUsageDataset {
        let _span = out.obs.span("features/app_dataset");
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut provenance = Vec::new();
        let holdout: std::collections::BTreeSet<usize> = labels
            .holdout_workers
            .iter()
            .chain(&labels.holdout_regular)
            .copied()
            .collect();
        for &i in &holdout {
            let obs = &out.observations[i];
            // Sorted app order: the row order of the training set must not
            // depend on HashMap iteration order, or the fitted model (and
            // everything downstream of it) varies run to run.
            let mut apps: Vec<AppId> = obs.record.apps.keys().copied().collect();
            apps.sort_unstable();
            for app in &apps {
                let label = if labels.suspicious.contains(app) {
                    1u8
                } else if labels.non_suspicious.contains(app) {
                    0u8
                } else {
                    continue;
                };
                x.push(app_features(obs, *app));
                y.push(label);
                provenance.push((i, *app));
            }
        }
        AppUsageDataset {
            data: Dataset::new(x, y, app_feature_names()),
            provenance,
        }
    }

    /// Number of promotion (suspicious) instances.
    pub fn n_suspicious(&self) -> usize {
        self.data.n_positive()
    }

    /// Number of personal (non-suspicious) instances.
    pub fn n_regular(&self) -> usize {
        self.data.n_negative()
    }
}

/// A named factory producing fresh, unfitted classifiers for CV folds.
/// `Sync` so cross-validation can call it from any worker thread.
pub type AlgorithmFactory = (&'static str, Box<dyn Fn() -> Box<dyn Classifier> + Sync>);

/// The algorithms evaluated in Table 1, by display name.
pub fn table1_algorithms() -> Vec<AlgorithmFactory> {
    vec![
        (
            "XGB",
            Box::new(|| {
                Box::new(GradientBoosting::new(GradientBoostingParams::default()))
                    as Box<dyn Classifier>
            }),
        ),
        (
            "RF",
            Box::new(|| {
                Box::new(RandomForest::new(RandomForestParams::default())) as Box<dyn Classifier>
            }),
        ),
        (
            "LR",
            Box::new(|| {
                Box::new(LogisticRegression::new(LogisticRegressionParams::default()))
                    as Box<dyn Classifier>
            }),
        ),
        (
            "KNN",
            Box::new(|| Box::new(KNearestNeighbors::paper_default()) as Box<dyn Classifier>),
        ),
        (
            "LVQ",
            Box::new(|| Box::new(Lvq::new(LvqParams::default())) as Box<dyn Classifier>),
        ),
    ]
}

/// The algorithms evaluated in Table 2 (SVM replaces LR).
pub fn table2_algorithms() -> Vec<AlgorithmFactory> {
    vec![
        (
            "XGB",
            Box::new(|| {
                Box::new(GradientBoosting::new(GradientBoostingParams::default()))
                    as Box<dyn Classifier>
            }),
        ),
        (
            "RF",
            Box::new(|| {
                Box::new(RandomForest::new(RandomForestParams::default())) as Box<dyn Classifier>
            }),
        ),
        (
            "SVM",
            Box::new(|| {
                Box::new(LinearSvm::new(LinearSvmParams::default())) as Box<dyn Classifier>
            }),
        ),
        (
            "KNN",
            Box::new(|| Box::new(KNearestNeighbors::paper_default()) as Box<dyn Classifier>),
        ),
        (
            "LVQ",
            Box::new(|| Box::new(Lvq::new(LvqParams::default())) as Box<dyn Classifier>),
        ),
    ]
}

/// One Table 1/2 row.
#[derive(Debug, Clone)]
pub struct AlgorithmRow {
    /// Algorithm display name.
    pub name: &'static str,
    /// Pooled CV metrics.
    pub metrics: Metrics,
}

/// The §7 evaluation report.
#[derive(Debug)]
pub struct AppClassifierReport {
    /// Table 1 rows (one per algorithm), in paper order.
    pub table: Vec<AlgorithmRow>,
    /// Feature importances (name, mean decrease in impurity) from the
    /// tree ensemble, sorted descending — Figure 13.
    pub importance: Vec<(String, f64)>,
    /// Dataset sizes for the report header.
    pub n_suspicious: usize,
    /// Non-suspicious instance count.
    pub n_regular: usize,
}

/// CV protocol constants from the paper: repeated (n = 5) 10-fold CV.
pub const CV_FOLDS: usize = 10;
/// Repeats of the cross-validation.
pub const CV_REPEATS: usize = 5;

/// Evaluate the §7 classifiers on a labeled dataset. `repeats` lets large
/// sweeps trade repetitions for time (the paper uses 5).
pub fn evaluate(
    dataset: &AppUsageDataset,
    repeats: usize,
    resampling: Resampling,
) -> AppClassifierReport {
    let mut table = Vec::new();
    for (name, factory) in table1_algorithms() {
        let report = cross_validate(
            factory.as_ref(),
            &dataset.data,
            CV_FOLDS,
            repeats,
            resampling,
            42,
        );
        table.push(AlgorithmRow {
            name,
            metrics: report.metrics,
        });
    }

    // Figure 13: mean decrease in impurity from a forest fit on all data.
    let importance = feature_importance(&dataset.data);

    AppClassifierReport {
        table,
        importance,
        n_suspicious: dataset.n_suspicious(),
        n_regular: dataset.n_regular(),
    }
}

/// Fit a random forest on the full dataset and rank features by mean
/// decrease in Gini (the Figure 13/14 measure).
pub fn feature_importance(data: &Dataset) -> Vec<(String, f64)> {
    let mut rf = RandomForest::new(RandomForestParams::default());
    rf.fit(&data.x, &data.y);
    let mut ranked: Vec<(String, f64)> = data
        .feature_names
        .iter()
        .cloned()
        .zip(rf.feature_importances())
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("importances are finite"));
    ranked
}

/// A deployable app classifier: the best Table 1 learner (XGB) fit on the
/// full labeled dataset, used downstream for the §8 app-suspiciousness
/// feature — and, per §9, the model an app store could embed on-device.
pub struct AppClassifier {
    model: GradientBoosting,
}

impl AppClassifier {
    /// Train on a labeled dataset.
    pub fn train(dataset: &AppUsageDataset) -> AppClassifier {
        let mut model = GradientBoosting::new(GradientBoostingParams::default());
        model.fit(&dataset.data.x, &dataset.data.y);
        AppClassifier { model }
    }

    /// Probability that the app's usage on this device is promotion.
    pub fn suspicion_proba(&self, obs: &racket_features::DeviceObservation, app: AppId) -> f64 {
        self.model.predict_proba(&app_features(obs, app))
    }

    /// Export the fitted model as a serializable [`racket_ml::Model`] for
    /// the live detection service (ARCHITECTURE.md §7).
    pub fn export(&self) -> racket_ml::Model {
        racket_ml::Model::Xgb(self.model.clone())
    }

    /// Fraction of the device's observed apps flagged as promotion-used —
    /// the §8.1 *app suspiciousness* feature and the Figure 15 x-axis.
    /// Preinstalled apps count toward the denominator: the paper's
    /// examples of personally-used apps on worker devices are Samsung
    /// system messaging/call apps (§8.2), so a device whose owner lives
    /// in its system apps reads as organic.
    pub fn device_suspiciousness(&self, obs: &racket_features::DeviceObservation) -> f64 {
        let apps: Vec<AppId> = obs.record.apps.keys().copied().collect();
        if apps.is_empty() {
            return 0.0;
        }
        let flagged = apps
            .iter()
            .filter(|&&a| self.suspicion_proba(obs, a) >= 0.5)
            .count();
        flagged as f64 / apps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{label_apps, LabelingConfig};
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static (StudyOutput, AppUsageDataset) {
        static D: OnceLock<(StudyOutput, AppUsageDataset)> = OnceLock::new();
        D.get_or_init(|| {
            let out = Study::new(StudyConfig::test_scale()).run();
            let labels = label_apps(&out, &LabelingConfig::test_scale());
            let ds = AppUsageDataset::build(&out, &labels);
            (out, ds)
        })
    }

    #[test]
    fn dataset_is_nonempty_and_skewed_to_suspicious() {
        let (_, ds) = dataset();
        assert!(
            ds.n_suspicious() > 50,
            "suspicious instances: {}",
            ds.n_suspicious()
        );
        assert!(ds.n_regular() > 10, "regular instances: {}", ds.n_regular());
        // The paper's dataset skews suspicious (2,994 vs 345).
        assert!(ds.n_suspicious() > ds.n_regular());
        assert_eq!(ds.provenance.len(), ds.data.len());
    }

    #[test]
    fn xgb_reaches_high_f1_like_table_1() {
        let (_, ds) = dataset();
        let report = evaluate(ds, 1, Resampling::None);
        let xgb = &report.table[0];
        assert_eq!(xgb.name, "XGB");
        assert!(
            xgb.metrics.f1 > 0.95,
            "XGB F1 = {:.4} (paper: 0.9972)",
            xgb.metrics.f1
        );
        assert!(xgb.metrics.auc > 0.92, "XGB AUC = {:.4}", xgb.metrics.auc);
    }

    #[test]
    fn importance_ranks_engagement_features_highly() {
        let (_, ds) = dataset();
        let report = evaluate(ds, 1, Resampling::None);
        let top8: Vec<&str> = report
            .importance
            .iter()
            .take(8)
            .map(|(n, _)| n.as_str())
            .collect();
        // Figure 13: engagement features (reviewing accounts, install-to-
        // review delay, on-screen behaviour) dominate the ranking. Which
        // of the correlated engagement signals a Gini ranking puts first
        // varies with the simulated fleet, so accept any of them near the
        // top.
        let expected_any = [
            "n_reviewing_accounts_before",
            "n_reviewing_accounts_during",
            "n_reviewing_accounts_after",
            "avg_install_review_days",
            "min_install_review_days",
            "mean_inter_review_days",
        ];
        assert!(
            top8.iter().any(|n| expected_any.contains(n)),
            "top-8 {top8:?} misses all review-engagement features"
        );
    }

    #[test]
    fn trained_classifier_separates_device_suspiciousness_by_cohort() {
        let (out, ds) = dataset();
        let clf = AppClassifier::train(ds);
        let mean = |cohort| {
            let vals: Vec<f64> = out
                .observations
                .iter()
                .zip(&out.truth)
                .filter(|(_, t)| t.persona.cohort() == cohort)
                .map(|(o, _)| clf.device_suspiciousness(o))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let worker = mean(racket_types::Cohort::Worker);
        let regular = mean(racket_types::Cohort::Regular);
        assert!(
            worker > regular + 0.15,
            "worker suspiciousness {worker:.3} vs regular {regular:.3}"
        );
    }
}
