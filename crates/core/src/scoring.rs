//! §9: the live detection service — scoring devices from streaming state.
//!
//! The paper closes by arguing that RacketStore-style detection could run
//! *inside* the store, flagging worker devices as their snapshots arrive
//! rather than in an offline batch job. This module is that deployment
//! surface:
//!
//! * [`DetectionService`] bundles the fitted §7 app model and §8 device
//!   model behind the `racket-ml` RKML codec, so a trained service can be
//!   serialized, shipped, and restored with byte-exact behaviour
//!   ([`DetectionService::to_bytes`] / [`DetectionService::from_bytes`]).
//! * [`DetectionService::prime`] folds the streaming feature state that
//!   `Study::run` maintained at ingest time into cached per-device vectors
//!   (one app-model pass per observed app — the same work the batch path
//!   spends *re-deriving* every feature from raw snapshots).
//! * [`DetectionService::score_streaming`] then classifies every device
//!   with a single device-model pass over the cached vectors — the
//!   "moment the last snapshot lands" latency the streaming engine buys.
//! * [`DetectionService::score_batch`] is the reference path: recompute
//!   every app and device feature from the assembled observations and
//!   classify from scratch.
//!
//! The two paths must agree **bitwise**: streaming state is maintained
//! from exact sufficient statistics (see `racket_features::streaming`),
//! so every suspiciousness ratio, feature vector and verdict probability
//! is `f64`-identical between them. `tests/streaming_equivalence.rs`
//! pins this across thread counts and chaos fault profiles.
//!
//! Both paths score through `racket-columnar`: feature vectors are packed
//! into contiguous [`FlatMatrix`] rows and classified by one
//! [`Model::score_batch`] pass per matrix, which is bitwise-equal per row
//! to calling [`Model::score`] (the row→column equivalence contract,
//! ARCHITECTURE.md §9) — `tests/columnar_equivalence.rs` holds the
//! verdicts to that.

use crate::app_classifier::AppClassifier;
use crate::device_classifier::DEDICATED_SUSPICIOUSNESS;
use crate::study::StudyOutput;
use racket_columnar::FlatMatrix;
use racket_features::{app_features, device_features};
use racket_ml::{Model, PersistError};
use racket_types::metrics::keys;

/// Batch-score a flat matrix of per-(device, app) feature vectors and
/// reduce each device's segment to its suspiciousness ratio (flagged /
/// observed apps; 0 for app-less devices). `counts[i]` is device `i`'s
/// segment length. The per-row probabilities are bitwise what
/// [`Model::score`] returns, and counting flagged apps is
/// order-invariant, so the ratios match the per-row loop exactly.
fn suspiciousness_from_segments(model: &Model, vectors: &FlatMatrix, counts: &[usize]) -> Vec<f64> {
    let scores = model.score_batch(vectors);
    let mut offset = 0;
    counts
        .iter()
        .map(|&n| {
            let segment = &scores[offset..offset + n];
            offset += n;
            if n == 0 {
                0.0
            } else {
                segment.iter().filter(|&&p| p >= 0.5).count() as f64 / n as f64
            }
        })
        .collect()
}

/// The deployable pair of fitted models, ready to score devices either
/// from streaming state or from a batch re-scan.
#[derive(Debug)]
pub struct DetectionService {
    app_model: Model,
    device_model: Model,
}

/// Cached per-device scoring state built from streaming feature state by
/// [`DetectionService::prime`].
#[derive(Debug, Clone)]
pub struct PrimedScores {
    /// App-suspiciousness ratio per observation (Figure 15 x-axis).
    pub suspiciousness: Vec<f64>,
    /// Device feature vector per observation, emitted from streaming
    /// state — ready for a single device-model pass.
    pub device_vectors: Vec<Vec<f64>>,
}

/// One device's classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceVerdict {
    /// Fraction of observed apps the app model flags as promotion-used.
    pub suspiciousness: f64,
    /// Device-model probability that the device is worker-controlled.
    pub proba: f64,
    /// `proba >= 0.5`.
    pub is_worker: bool,
}

impl DeviceVerdict {
    /// Whether the device reads as promotion-dedicated (Figure 15 cut).
    pub fn is_dedicated(&self) -> bool {
        self.suspiciousness >= DEDICATED_SUSPICIOUSNESS
    }
}

impl DetectionService {
    /// Assemble a service from already-fitted models.
    ///
    /// The app model must consume §7 app feature vectors and the device
    /// model §8 device feature vectors; [`DetectionService::train`] is the
    /// usual constructor.
    pub fn from_parts(app_model: Model, device_model: Model) -> DetectionService {
        DetectionService {
            app_model,
            device_model,
        }
    }

    /// Train the service's device model on a labeled device dataset and
    /// adopt the app classifier that produced its suspiciousness column.
    pub fn train(
        app_classifier: &AppClassifier,
        device_dataset: &crate::device_classifier::DeviceDataset,
    ) -> DetectionService {
        use racket_ml::{Classifier, GradientBoosting, GradientBoostingParams};
        let mut device = GradientBoosting::new(GradientBoostingParams::default());
        device.fit(&device_dataset.data.x, &device_dataset.data.y);
        DetectionService {
            app_model: app_classifier.export(),
            device_model: Model::Xgb(device),
        }
    }

    /// The fitted app model.
    pub fn app_model(&self) -> &Model {
        &self.app_model
    }

    /// The fitted device model.
    pub fn device_model(&self) -> &Model {
        &self.device_model
    }

    /// Serialize both models: `u64` little-endian app-blob length, the
    /// app model's RKML bytes, then the same for the device model. Each
    /// blob carries its own magic/version/checksum envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let app = self.app_model.to_bytes();
        let dev = self.device_model.to_bytes();
        let mut out = Vec::with_capacity(16 + app.len() + dev.len());
        out.extend_from_slice(&(app.len() as u64).to_le_bytes());
        out.extend_from_slice(&app);
        out.extend_from_slice(&(dev.len() as u64).to_le_bytes());
        out.extend_from_slice(&dev);
        out
    }

    /// Restore a service serialized by [`DetectionService::to_bytes`].
    /// Corrupted or truncated input returns `Err`, never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<DetectionService, PersistError> {
        fn split_blob(bytes: &[u8]) -> Result<(&[u8], &[u8]), PersistError> {
            if bytes.len() < 8 {
                return Err(PersistError::Truncated);
            }
            let len = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice")) as usize;
            let rest = &bytes[8..];
            if rest.len() < len {
                return Err(PersistError::Truncated);
            }
            Ok(rest.split_at(len))
        }
        let (app, rest) = split_blob(bytes)?;
        let (dev, tail) = split_blob(rest)?;
        if !tail.is_empty() {
            return Err(PersistError::Malformed("trailing bytes after device model"));
        }
        Ok(DetectionService {
            app_model: Model::from_bytes(app)?,
            device_model: Model::from_bytes(dev)?,
        })
    }

    /// Fold the streaming feature state into cached scoring state: one
    /// app-model pass per (device, app) to compute suspiciousness, plus
    /// the device feature vector emitted straight from streaming state.
    ///
    /// This is the incremental cost the streaming engine pays *once*; the
    /// per-query work left for [`DetectionService::score_streaming`] is a
    /// single device-model pass per device.
    pub fn prime(&self, out: &StudyOutput) -> PrimedScores {
        let _span = out.obs.span(keys::SPAN_STREAM_PRIME);
        // Every (device, app) vector lands in one flat matrix, scored by a
        // single batch pass over contiguous rows instead of one model call
        // (and one Vec walk) per app.
        let mut vectors: Option<FlatMatrix> = None;
        let mut counts = Vec::with_capacity(out.observations.len());
        for (obs, stream) in out.observations.iter().zip(&out.streaming) {
            let mut n = 0;
            for &a in obs.record.apps.keys() {
                let v = stream.app_vector(obs, a);
                vectors
                    .get_or_insert_with(|| FlatMatrix::new(v.len()))
                    .push_row(&v);
                n += 1;
            }
            counts.push(n);
        }
        let vectors = vectors.unwrap_or_else(|| FlatMatrix::new(0));
        let suspiciousness = suspiciousness_from_segments(&self.app_model, &vectors, &counts);
        let device_vectors = out
            .observations
            .iter()
            .zip(&out.streaming)
            .zip(&suspiciousness)
            .map(|((obs, stream), &susp)| stream.device_vector(obs, susp))
            .collect();
        PrimedScores {
            suspiciousness,
            device_vectors,
        }
    }

    /// Classify every device from primed streaming state: one device-model
    /// pass per cached vector, no feature recomputation.
    pub fn score_streaming(&self, out: &StudyOutput, primed: &PrimedScores) -> Vec<DeviceVerdict> {
        let _span = out.obs.span(keys::SPAN_SCORE_STREAM);
        let vectors = FlatMatrix::from_rows(&primed.device_vectors);
        self.device_model
            .score_batch(&vectors)
            .into_iter()
            .zip(&primed.suspiciousness)
            .map(|(proba, &suspiciousness)| DeviceVerdict {
                suspiciousness,
                proba,
                is_worker: proba >= 0.5,
            })
            .collect()
    }

    /// Classify every device by re-deriving all features from the raw
    /// assembled observations — the offline reference path the streaming
    /// engine replaces. Bitwise-equal verdicts to
    /// [`DetectionService::score_streaming`].
    pub fn score_batch(&self, out: &StudyOutput) -> Vec<DeviceVerdict> {
        let _span = out.obs.span(keys::SPAN_SCORE_BATCH);
        // Same two-matrix shape as the streaming path: one batch pass over
        // all (device, app) vectors, then one over the device vectors.
        let mut app_vectors: Option<FlatMatrix> = None;
        let mut counts = Vec::with_capacity(out.observations.len());
        for obs in &out.observations {
            let mut n = 0;
            for &a in obs.record.apps.keys() {
                let v = app_features(obs, a);
                app_vectors
                    .get_or_insert_with(|| FlatMatrix::new(v.len()))
                    .push_row(&v);
                n += 1;
            }
            counts.push(n);
        }
        let app_vectors = app_vectors.unwrap_or_else(|| FlatMatrix::new(0));
        let suspiciousness = suspiciousness_from_segments(&self.app_model, &app_vectors, &counts);
        let device_vectors: Vec<Vec<f64>> = out
            .observations
            .iter()
            .zip(&suspiciousness)
            .map(|(obs, &susp)| device_features(obs, susp))
            .collect();
        let device_vectors = FlatMatrix::from_rows(&device_vectors);
        self.device_model
            .score_batch(&device_vectors)
            .into_iter()
            .zip(&suspiciousness)
            .map(|(proba, &suspiciousness)| DeviceVerdict {
                suspiciousness,
                proba,
                is_worker: proba >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_classifier::{AppClassifier, AppUsageDataset};
    use crate::device_classifier::DeviceDataset;
    use crate::labeling::{label_apps, LabelingConfig};
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn service() -> &'static (StudyOutput, DetectionService) {
        static S: OnceLock<(StudyOutput, DetectionService)> = OnceLock::new();
        S.get_or_init(|| {
            let out = Study::new(StudyConfig::test_scale()).run();
            let labels = label_apps(&out, &LabelingConfig::test_scale());
            let app_ds = AppUsageDataset::build(&out, &labels);
            let clf = AppClassifier::train(&app_ds);
            let dev_ds = DeviceDataset::build(&out, &clf, 2, None, 5);
            let svc = DetectionService::train(&clf, &dev_ds);
            (out, svc)
        })
    }

    #[test]
    fn streaming_and_batch_verdicts_are_bitwise_equal() {
        let (out, svc) = service();
        let primed = svc.prime(out);
        let streaming = svc.score_streaming(out, &primed);
        let batch = svc.score_batch(out);
        assert_eq!(streaming.len(), batch.len());
        assert_eq!(streaming.len(), out.observations.len());
        for (i, (s, b)) in streaming.iter().zip(&batch).enumerate() {
            assert_eq!(
                s.suspiciousness.to_bits(),
                b.suspiciousness.to_bits(),
                "device {i} suspiciousness"
            );
            assert_eq!(s.proba.to_bits(), b.proba.to_bits(), "device {i} proba");
            assert_eq!(s.is_worker, b.is_worker, "device {i} verdict");
        }
    }

    #[test]
    fn verdicts_separate_cohorts() {
        let (out, svc) = service();
        let primed = svc.prime(out);
        let verdicts = svc.score_streaming(out, &primed);
        let mean = |cohort| {
            let vals: Vec<f64> = verdicts
                .iter()
                .zip(&out.truth)
                .filter(|(_, t)| t.persona.cohort() == cohort)
                .map(|(v, _)| v.proba)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let worker = mean(racket_types::Cohort::Worker);
        let regular = mean(racket_types::Cohort::Regular);
        assert!(
            worker > regular + 0.2,
            "worker proba {worker:.3} vs regular {regular:.3}"
        );
    }

    #[test]
    fn service_round_trips_through_bytes() {
        let (out, svc) = service();
        let bytes = svc.to_bytes();
        let restored = DetectionService::from_bytes(&bytes).expect("round-trip");
        let primed = svc.prime(out);
        let before = svc.score_streaming(out, &primed);
        let primed_after = restored.prime(out);
        let after = restored.score_streaming(out, &primed_after);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.proba.to_bits(), b.proba.to_bits());
            assert_eq!(a.suspiciousness.to_bits(), b.suspiciousness.to_bits());
        }
    }

    #[test]
    fn corrupted_service_bytes_return_err() {
        let (_, svc) = service();
        let bytes = svc.to_bytes();
        assert!(DetectionService::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(DetectionService::from_bytes(&bytes[..4]).is_err());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert!(DetectionService::from_bytes(&flipped).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DetectionService::from_bytes(&trailing).is_err());
    }
}
