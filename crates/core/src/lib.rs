//! # racketstore — reproduction core
//!
//! The paper's contribution, end to end:
//!
//! 1. [`study`] — run the study: generate the participant fleet
//!    ([`racket_agents`]), drive every device's behaviour through its
//!    monitored window while the RacketStore collectors sample it
//!    ([`racket_collect`]), crawl reviews every 12 h, and assemble the
//!    measurement database (one [`racket_features::DeviceObservation`] per
//!    physical device, after Appendix A fingerprint coalescing).
//! 2. [`measurements`] — the §6 analyses: accounts, installed/reviewed
//!    apps, install-to-review delays, stopped apps, churn, daily app use,
//!    permissions and malware, each with the paper's statistical battery
//!    (KS + parametric and non-parametric ANOVA).
//! 3. [`labeling`] — the §7.2 train-and-validate selection: device
//!    holdouts, the suspicious-app rule (advertised ∧ co-installed on
//!    worker devices ∧ absent from regular devices) and the non-suspicious
//!    rule (regular-only ∧ high review volume).
//! 4. [`app_classifier`] — §7: detect apps installed for promotion
//!    (Table 1, Figure 13).
//! 5. [`device_classifier`] — §8: detect worker-controlled devices
//!    (Table 2, Figures 14 and 15), coupling in the app classifier through
//!    the *app suspiciousness* feature.
//! 6. [`scoring`] — §9: the live detection service. Fitted models are
//!    serialized through the `racket-ml` RKML codec and score devices
//!    directly from the streaming feature state the study maintained at
//!    ingest time — bitwise-equal to a batch re-scan, at a fraction of
//!    the end-of-study latency.
//! 7. [`campaign`] — §7.3: coordinated-campaign (lockstep) detection.
//!    The study reports campaigns incrementally from ingest-time sketches;
//!    [`campaign::batch_report`] recomputes the identical report from the
//!    columnar install-event family, and [`campaign::evaluate`] scores
//!    either against the fleet's scheduled ground truth.

#![deny(missing_docs)]

pub mod app_classifier;
pub mod campaign;
pub mod device_classifier;
pub mod labeling;
pub mod measurements;
pub mod scoring;
pub mod study;
pub mod text;

pub use app_classifier::{AppClassifierReport, AppUsageDataset};
pub use campaign::{batch_report, evaluate, membership, CampaignEval};
pub use device_classifier::{DeviceClassifierReport, OrganicSplit};
pub use labeling::{AppLabels, LabelingConfig};
pub use measurements::MeasurementReport;
pub use scoring::{DetectionService, DeviceVerdict, PrimedScores};
pub use study::{Study, StudyConfig, StudyOutput};
