//! Train-and-validate selection (§7.2).
//!
//! The paper sets aside 20% of worker devices and 42% of regular devices,
//! and labels apps by their installation pattern *on those holdout
//! devices*:
//!
//! * **suspicious** — advertised for promotion in the infiltrated Facebook
//!   groups ∧ installed on ≥ 5 holdout worker devices ∧ installed on no
//!   regular device ("co-installing apps that are not popular and we know
//!   have been promoted is likely the result of ASO work");
//! * **non-suspicious** — installed on no worker device ∧ on ≥ 1 regular
//!   device ∧ with ≥ 15,000 store reviews.
//!
//! Thresholds are configurable so the rule scales down to small test
//! fleets.

use crate::study::StudyOutput;
use racket_types::{AppId, Cohort};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Labeling thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelingConfig {
    /// Fraction of worker devices set aside for app selection (paper: 0.2).
    pub worker_holdout: f64,
    /// Fraction of regular devices set aside (paper: 0.42).
    pub regular_holdout: f64,
    /// Minimum holdout worker devices co-installing a suspicious app
    /// (paper: 5).
    pub min_worker_installs: usize,
    /// Minimum store review volume for a non-suspicious app (paper:
    /// 15,000).
    pub min_reviews_non_suspicious: u64,
    /// Selection seed.
    pub seed: u64,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            worker_holdout: 0.2,
            regular_holdout: 0.42,
            min_worker_installs: 5,
            min_reviews_non_suspicious: 15_000,
            seed: 99,
        }
    }
}

impl LabelingConfig {
    /// Thresholds scaled for a small test fleet.
    pub fn test_scale() -> Self {
        LabelingConfig {
            min_worker_installs: 2,
            ..Default::default()
        }
    }
}

/// The selected app labels and device holdouts.
#[derive(Debug, Clone)]
pub struct AppLabels {
    /// Apps labeled suspicious (promotion-installed).
    pub suspicious: HashSet<AppId>,
    /// Apps labeled non-suspicious (personal use).
    pub non_suspicious: HashSet<AppId>,
    /// Observation indexes of the holdout worker devices.
    pub holdout_workers: Vec<usize>,
    /// Observation indexes of the holdout regular devices.
    pub holdout_regular: Vec<usize>,
}

/// Apply the §7.2 selection to a study output.
pub fn label_apps(out: &StudyOutput, config: &LabelingConfig) -> AppLabels {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let worker_idx: Vec<usize> = (0..out.observations.len())
        .filter(|&i| out.truth[i].persona.cohort() == Cohort::Worker)
        .collect();
    let regular_idx: Vec<usize> = (0..out.observations.len())
        .filter(|&i| out.truth[i].persona.cohort() == Cohort::Regular)
        .collect();

    let sample = |idx: &[usize], frac: f64, rng: &mut StdRng| -> Vec<usize> {
        let mut v = idx.to_vec();
        v.shuffle(rng);
        let k = ((idx.len() as f64 * frac).round() as usize)
            .max(1)
            .min(idx.len());
        v.truncate(k);
        v.sort_unstable();
        v
    };
    let holdout_workers = sample(&worker_idx, config.worker_holdout, &mut rng);
    let holdout_regular = sample(&regular_idx, config.regular_holdout, &mut rng);

    // Installation sets. "Installed" uses every app observed on the device
    // during monitoring (the paper reads the full installed list).
    let installed_on =
        |i: usize| -> HashSet<AppId> { out.observations[i].record.apps.keys().copied().collect() };
    let mut installed_any_worker: HashSet<AppId> = HashSet::new();
    for &i in &worker_idx {
        installed_any_worker.extend(installed_on(i));
    }
    let mut installed_any_regular: HashSet<AppId> = HashSet::new();
    for &i in &regular_idx {
        installed_any_regular.extend(installed_on(i));
    }

    // Suspicious: advertised ∧ ≥ k holdout worker devices ∧ 0 regular.
    let advertised: HashSet<AppId> = out.fleet.catalog.promoted_apps().iter().copied().collect();
    let mut suspicious = HashSet::new();
    for &app in &advertised {
        if installed_any_regular.contains(&app) {
            continue;
        }
        let holdout_count = holdout_workers
            .iter()
            .filter(|&&i| out.observations[i].record.apps.contains_key(&app))
            .count();
        if holdout_count >= config.min_worker_installs {
            suspicious.insert(app);
        }
    }

    // Non-suspicious: never on a worker device, on ≥ 1 regular holdout
    // device, popular enough on the store.
    let mut non_suspicious = HashSet::new();
    for &i in &holdout_regular {
        for app in installed_on(i) {
            if installed_any_worker.contains(&app) {
                continue;
            }
            if out.fleet.store.public_review_count(app) >= config.min_reviews_non_suspicious {
                non_suspicious.insert(app);
            }
        }
    }

    AppLabels {
        suspicious,
        non_suspicious,
        holdout_workers,
        holdout_regular,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn output() -> &'static StudyOutput {
        static OUT: OnceLock<StudyOutput> = OnceLock::new();
        OUT.get_or_init(|| Study::new(StudyConfig::test_scale()).run())
    }

    #[test]
    fn holdouts_have_expected_sizes() {
        let labels = label_apps(output(), &LabelingConfig::test_scale());
        // 40 workers × 0.2 = 8; 20 regular × 0.42 ≈ 8.
        assert_eq!(labels.holdout_workers.len(), 8);
        assert_eq!(labels.holdout_regular.len(), 8);
    }

    #[test]
    fn labels_are_disjoint_and_nonempty() {
        let labels = label_apps(output(), &LabelingConfig::test_scale());
        assert!(!labels.suspicious.is_empty(), "no suspicious apps selected");
        assert!(
            !labels.non_suspicious.is_empty(),
            "no non-suspicious apps selected"
        );
        assert!(labels.suspicious.is_disjoint(&labels.non_suspicious));
    }

    #[test]
    fn suspicious_apps_are_advertised_promos() {
        let out = output();
        let labels = label_apps(out, &LabelingConfig::test_scale());
        for app in &labels.suspicious {
            assert!(out.fleet.catalog.promoted_apps().contains(app));
        }
    }

    #[test]
    fn non_suspicious_apps_have_high_review_volume() {
        let out = output();
        let labels = label_apps(out, &LabelingConfig::test_scale());
        for app in &labels.non_suspicious {
            assert!(out.fleet.store.public_review_count(*app) >= 15_000);
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let a = label_apps(output(), &LabelingConfig::test_scale());
        let b = label_apps(output(), &LabelingConfig::test_scale());
        assert_eq!(a.suspicious, b.suspicious);
        assert_eq!(a.holdout_workers, b.holdout_workers);
    }
}
