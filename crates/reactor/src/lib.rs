//! A vendored mini-reactor for the async collection plane.
//!
//! The collection front end (ARCHITECTURE.md §8) multiplexes thousands of
//! client connections onto a handful of worker threads. Each worker owns a
//! disjoint set of connections and drives them with the three primitives
//! this crate provides — nothing here knows about sockets, frames or the
//! protocol:
//!
//! * [`Poller`] — readiness polling over registered [`Source`]s with fair
//!   rotation, so a chatty connection cannot starve its neighbours. A
//!   `Source` is anything that can cheaply answer "do you have work right
//!   now?": a non-blocking socket, an in-memory transport, a queue.
//! * [`TimerWheel`] — a hashed timer wheel for retry and stall deadlines.
//!   Deadlines are scheduled in coarse ticks (the collection plane uses
//!   milliseconds) and cancelled lazily through per-token stamps, the
//!   classic trick that makes `O(1)` cancellation free of bookkeeping.
//! * [`IdleStrategy`] — an escalating spin → yield → park backoff for
//!   workers with nothing to do, bounding both wasted CPU when idle and
//!   wakeup latency when work arrives.
//!
//! The crate is dependency-free and deliberately sans-IO: it never blocks
//! on a file descriptor and owns no threads. That keeps the study driver's
//! determinism contract intact — the reactor decides *when* a worker looks
//! at a connection, and the data plane stays a pure function of the
//! configuration and seed regardless (see ARCHITECTURE.md §8 for the
//! argument).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod idle;
mod poll;
mod timer;

pub use idle::IdleStrategy;
pub use poll::{Poller, Source, Token};
pub use timer::TimerWheel;
