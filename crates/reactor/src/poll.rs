//! Readiness polling with fair rotation over slab-registered sources.

/// Identifies a registered [`Source`] within one [`Poller`].
///
/// Tokens are slab indexes: stable for the lifetime of the registration,
/// recycled after [`Poller::deregister`]. Callers that hold tokens across
/// deregistrations should pair them with a generation stamp (the
/// [`crate::TimerWheel`] expiry path does exactly this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Anything the reactor can poll for readiness.
///
/// `ready` must be cheap (the poller calls it once per source per poll
/// round) and side-effect free apart from internal caching: returning
/// `true` means a subsequent read/drain would make progress *now*. It
/// takes `&mut self` so implementations may refresh an internal peek
/// buffer.
pub trait Source {
    /// Whether this source currently has work available.
    fn ready(&mut self) -> bool;
}

/// Readiness poller: a slab of [`Source`]s scanned with fair rotation.
///
/// Each [`Poller::poll`] round starts scanning one past where the
/// previous round stopped, so under sustained load every source is
/// visited before any source is visited twice — a busy connection cannot
/// starve the rest. This is level-triggered polling over in-process
/// sources (channels, non-blocking transports), which is exactly what the
/// collection plane's `MemTransport` fleet needs; an epoll-backed
/// `Source` would slot in without changing the worker loop.
#[derive(Debug, Default)]
pub struct Poller<S> {
    slots: Vec<Option<S>>,
    free: Vec<usize>,
    /// Slot index the next poll round starts scanning from.
    cursor: usize,
    len: usize,
}

impl<S: Source> Poller<S> {
    /// Create an empty poller.
    pub fn new() -> Self {
        Poller {
            slots: Vec::new(),
            free: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register a source, returning its token. Slots freed by
    /// [`Poller::deregister`] are recycled before the slab grows.
    pub fn register(&mut self, source: S) -> Token {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(source);
                Token(idx)
            }
            None => {
                self.slots.push(Some(source));
                Token(self.slots.len() - 1)
            }
        }
    }

    /// Remove a source, returning it. `None` if the token is stale.
    pub fn deregister(&mut self, token: Token) -> Option<S> {
        let source = self.slots.get_mut(token.0)?.take()?;
        self.free.push(token.0);
        self.len -= 1;
        Some(source)
    }

    /// Borrow a registered source mutably. `None` if the token is stale.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut S> {
        self.slots.get_mut(token.0)?.as_mut()
    }

    /// Visit every registered source with its token, in slot order
    /// (shutdown paths drain per-source state through this).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Token, &mut S)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|s| (Token(i), s)))
    }

    /// One poll round: scan every registered source once, starting one
    /// past where the previous round stopped, and append the tokens of
    /// ready sources to `ready` (cleared first) up to `budget`. Returns
    /// the number of ready tokens collected. When the budget truncates the
    /// scan, the cursor stops at the truncation point, so the next round
    /// resumes there — fairness holds across rounds, not just within one.
    pub fn poll(&mut self, ready: &mut Vec<Token>, budget: usize) -> usize {
        ready.clear();
        if self.slots.is_empty() || budget == 0 {
            return 0;
        }
        let n = self.slots.len();
        let start = self.cursor % n;
        for step in 0..n {
            let idx = (start + step) % n;
            if let Some(source) = self.slots[idx].as_mut() {
                if source.ready() {
                    ready.push(Token(idx));
                    if ready.len() == budget {
                        self.cursor = (idx + 1) % n;
                        return ready.len();
                    }
                }
            }
        }
        self.cursor = start; // full scan: resume from the same origin
        ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source that is ready for a scripted number of polls.
    struct Scripted {
        remaining: usize,
    }

    impl Source for Scripted {
        fn ready(&mut self) -> bool {
            if self.remaining > 0 {
                self.remaining -= 1;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn registers_polls_and_deregisters() {
        let mut p = Poller::new();
        let a = p.register(Scripted { remaining: 1 });
        let b = p.register(Scripted { remaining: 0 });
        assert_eq!(p.len(), 2);
        let mut ready = Vec::new();
        assert_eq!(p.poll(&mut ready, usize::MAX), 1);
        assert_eq!(ready, vec![a]);
        assert!(p.deregister(b).is_some());
        assert!(p.deregister(b).is_none(), "double deregister is stale");
        assert_eq!(p.len(), 1);
        assert!(p.get_mut(a).is_some());
        assert!(p.get_mut(b).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut p = Poller::new();
        let a = p.register(Scripted { remaining: 0 });
        p.deregister(a).unwrap();
        let b = p.register(Scripted { remaining: 0 });
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn budget_truncates_and_rotation_resumes_fairly() {
        let mut p = Poller::new();
        let tokens: Vec<Token> = (0..4)
            .map(|_| {
                p.register(Scripted {
                    remaining: usize::MAX,
                })
            })
            .collect();
        let mut ready = Vec::new();
        // Budget 2: first round serves sources 0 and 1…
        assert_eq!(p.poll(&mut ready, 2), 2);
        assert_eq!(ready, vec![tokens[0], tokens[1]]);
        // …and the next round resumes at source 2, not back at 0.
        assert_eq!(p.poll(&mut ready, 2), 2);
        assert_eq!(ready, vec![tokens[2], tokens[3]]);
        assert_eq!(p.poll(&mut ready, 2), 2);
        assert_eq!(ready, vec![tokens[0], tokens[1]]);
    }

    #[test]
    fn iter_mut_visits_live_slots_only() {
        let mut p = Poller::new();
        let a = p.register(Scripted { remaining: 0 });
        let b = p.register(Scripted { remaining: 0 });
        p.deregister(a).unwrap();
        let visited: Vec<Token> = p.iter_mut().map(|(t, _)| t).collect();
        assert_eq!(visited, vec![b]);
    }

    #[test]
    fn empty_poller_polls_nothing() {
        let mut p: Poller<Scripted> = Poller::new();
        let mut ready = vec![Token(99)];
        assert_eq!(p.poll(&mut ready, 8), 0);
        assert!(ready.is_empty(), "output vector is cleared");
    }
}
