//! Hashed timer wheel for coarse retry/stall deadlines.

use crate::poll::Token;

/// One scheduled deadline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline: u64,
    token: Token,
    stamp: u64,
}

/// A hashed timer wheel: `O(1)` schedule, amortized `O(1)` expiry.
///
/// Time is measured in caller-defined ticks (the collection plane uses
/// milliseconds since worker start). Each deadline hashes into one of
/// `n_slots` buckets by `deadline % n_slots`; advancing the clock scans
/// only the buckets the elapsed ticks map to — or every bucket once, if
/// the clock jumped further than a full wheel revolution.
///
/// Cancellation is lazy: deadlines carry a caller-supplied `stamp`
/// (typically a per-connection generation counter). Instead of removing
/// an entry on cancel, the caller bumps the connection's generation and
/// ignores expiries whose stamp no longer matches. This keeps the wheel
/// free of per-entry handles, which is what makes rescheduling a stall
/// deadline on every byte of progress affordable.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// The wheel's current tick: everything at or before it has expired.
    now: u64,
    pending: usize,
}

impl TimerWheel {
    /// Create a wheel with `n_slots` buckets (at least 1) starting at
    /// tick 0.
    pub fn new(n_slots: usize) -> Self {
        TimerWheel {
            slots: (0..n_slots.max(1)).map(|_| Vec::new()).collect(),
            now: 0,
            pending: 0,
        }
    }

    /// The wheel's current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Deadlines scheduled and not yet expired (cancelled ones included —
    /// cancellation is lazy).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `(token, stamp)` to expire at tick `deadline`. A deadline
    /// at or before the current tick fires on the next
    /// [`TimerWheel::advance`].
    pub fn schedule(&mut self, deadline: u64, token: Token, stamp: u64) {
        // Clamp past deadlines forward one tick so they land in a bucket
        // the next advance is guaranteed to scan.
        let deadline = deadline.max(self.now + 1);
        let idx = (deadline % self.slots.len() as u64) as usize;
        self.slots[idx].push(Entry {
            deadline,
            token,
            stamp,
        });
        self.pending += 1;
    }

    /// Advance the clock to tick `now`, appending every `(token, stamp)`
    /// whose deadline has passed to `expired` (cleared first). A `now` at
    /// or before the current tick is a no-op. Callers must validate each
    /// stamp against their own generation state — a mismatch means the
    /// deadline was cancelled after scheduling.
    pub fn advance(&mut self, now: u64, expired: &mut Vec<(Token, u64)>) {
        expired.clear();
        if now <= self.now {
            return;
        }
        let n = self.slots.len() as u64;
        let elapsed = now - self.now;
        if elapsed >= n {
            // Full revolution (or more): every bucket's turn has come up.
            for slot in &mut self.slots {
                Self::drain_expired(slot, now, expired, &mut self.pending);
            }
        } else {
            for tick in (self.now + 1)..=now {
                let idx = (tick % n) as usize;
                Self::drain_expired(&mut self.slots[idx], now, expired, &mut self.pending);
            }
        }
        self.now = now;
    }

    /// Move entries with `deadline <= now` out of `slot` into `expired`;
    /// later rounds of the same bucket stay put.
    fn drain_expired(
        slot: &mut Vec<Entry>,
        now: u64,
        expired: &mut Vec<(Token, u64)>,
        pending: &mut usize,
    ) {
        slot.retain(|e| {
            if e.deadline <= now {
                expired.push((e.token, e.stamp));
                *pending -= 1;
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new(8);
        w.schedule(5, Token(1), 0);
        let mut exp = Vec::new();
        w.advance(4, &mut exp);
        assert!(exp.is_empty());
        assert_eq!(w.pending(), 1);
        w.advance(5, &mut exp);
        assert_eq!(exp, vec![(Token(1), 0)]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn survives_full_revolutions_and_big_jumps() {
        let mut w = TimerWheel::new(4);
        // Two entries hash to the same bucket, one revolution apart.
        w.schedule(3, Token(1), 0);
        w.schedule(7, Token(2), 0);
        let mut exp = Vec::new();
        w.advance(3, &mut exp);
        assert_eq!(exp, vec![(Token(1), 0)], "later round stays put");
        // A jump far past the wheel size scans every bucket once.
        w.schedule(100, Token(3), 0);
        w.advance(1_000, &mut exp);
        let mut got = exp.clone();
        got.sort();
        assert_eq!(got, vec![(Token(2), 0), (Token(3), 0)]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut w = TimerWheel::new(8);
        let mut exp = Vec::new();
        w.advance(10, &mut exp);
        w.schedule(3, Token(9), 7); // already in the past
        w.advance(11, &mut exp);
        assert_eq!(exp, vec![(Token(9), 7)]);
    }

    #[test]
    fn stamps_ride_through_for_lazy_cancellation() {
        let mut w = TimerWheel::new(8);
        w.schedule(2, Token(1), 1);
        w.schedule(2, Token(1), 2); // rescheduled: generation bumped
        let mut exp = Vec::new();
        w.advance(2, &mut exp);
        // Both fire; the caller keeps only the entry matching its current
        // generation (2) and ignores the stale one.
        assert_eq!(exp.len(), 2);
        assert!(exp.contains(&(Token(1), 1)));
        assert!(exp.contains(&(Token(1), 2)));
    }

    #[test]
    fn rewinding_is_a_no_op() {
        let mut w = TimerWheel::new(8);
        w.schedule(5, Token(1), 0);
        let mut exp = Vec::new();
        w.advance(6, &mut exp);
        assert_eq!(exp.len(), 1);
        w.advance(3, &mut exp);
        assert!(exp.is_empty());
        assert_eq!(w.now(), 6, "clock never rewinds");
    }
}
