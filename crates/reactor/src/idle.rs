//! Escalating idle backoff for reactor worker threads.

use std::time::Duration;

/// Spin → yield → park backoff for a worker loop with nothing to do.
///
/// A worker that found no ready sources calls [`IdleStrategy::idle`] once
/// per empty round and [`IdleStrategy::reset`] as soon as any round makes
/// progress. The escalation bounds both sides of the trade-off:
///
/// * fresh idleness spins (`spin_hint`), so a reply that is microseconds
///   away is picked up without a syscall;
/// * sustained idleness yields, giving the CPU to the client threads that
///   must run before new work can exist (critical on small machines where
///   workers and clients share cores);
/// * long idleness parks with a timeout, capping an idle worker's CPU
///   cost at a few wakeups per millisecond while bounding worst-case
///   wakeup latency at `park_timeout` (there is no cross-thread unparker;
///   the in-memory transports have no readiness notification to hook).
#[derive(Debug, Clone)]
pub struct IdleStrategy {
    spin_limit: u32,
    yield_limit: u32,
    park_timeout: Duration,
    rounds: u32,
}

impl IdleStrategy {
    /// Create a strategy: `spin_limit` busy rounds, then `yield_limit`
    /// yielding rounds, then parks of `park_timeout` each.
    pub fn new(spin_limit: u32, yield_limit: u32, park_timeout: Duration) -> Self {
        IdleStrategy {
            spin_limit,
            yield_limit,
            park_timeout,
            rounds: 0,
        }
    }

    /// The tuning the collection plane's workers use: a short spin, a
    /// yield phase sized for single-core timeslicing, 200 µs parks.
    pub fn default_for_io() -> Self {
        IdleStrategy::new(16, 64, Duration::from_micros(200))
    }

    /// Consecutive idle rounds since the last reset.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Record one idle round and back off accordingly.
    pub fn idle(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds <= self.spin_limit {
            std::hint::spin_loop();
        } else if self.rounds <= self.spin_limit + self.yield_limit {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(self.park_timeout);
        }
    }

    /// Work happened: drop back to the spin phase.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_resets() {
        let mut s = IdleStrategy::new(2, 2, Duration::from_micros(1));
        for _ in 0..6 {
            s.idle(); // walks through spin, yield and park phases
        }
        assert_eq!(s.rounds(), 6);
        s.reset();
        assert_eq!(s.rounds(), 0);
    }

    #[test]
    fn park_phase_bounds_latency_not_liveness() {
        // Even deep in the park phase, idle() returns promptly (the park
        // is timed) — the loop stays live without an unparker.
        let mut s = IdleStrategy::new(0, 0, Duration::from_micros(50));
        let start = std::time::Instant::now();
        for _ in 0..4 {
            s.idle();
        }
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(s.rounds(), 4);
    }
}
