//! Simulated time.
//!
//! The study ran between October 2019 and April 2020; for the reproduction
//! all timestamps are seconds since a *study epoch*. One-second granularity
//! matches the review timestamps the paper's crawler collected (§5), and is
//! finer than the fastest collector (5 s).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day.
pub const DAY: u64 = 86_400;

/// A point in simulated time, in whole seconds since the study epoch.
///
/// `SimTime` is totally ordered and supports `+ SimDuration` and
/// `- SimTime -> SimDuration`. It deliberately has no relation to wall-clock
/// time: the fleet simulator is deterministic and the collection pipeline is
/// driven by this clock, never by `std::time`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The study epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Construct from whole minutes since the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * MINUTE)
    }

    /// Construct from whole hours since the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * HOUR)
    }

    /// Construct from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * DAY)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional days since the epoch.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// The calendar day index (0-based) this instant falls on.
    pub const fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Saturating subtraction; returns a zero duration if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference in seconds (`self - other`). Negative values arise
    /// in the paper's data when a review predates the *last* install of an
    /// app (§6.3, "Install-to-Review Time"); such reviews come from a
    /// previous install and are excluded from the delay analysis.
    pub fn signed_delta_secs(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Advance by `d`, saturating at `u64::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / DAY;
        let h = (self.0 % DAY) / HOUR;
        let m = (self.0 % HOUR) / MINUTE;
        let s = self.0 % MINUTE;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

/// A span of simulated time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MINUTE)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * HOUR)
    }

    /// Construct from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * DAY)
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// The span in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// A half-open interval `[start, end)` of simulated time.
///
/// Used by Appendix A's snapshot fingerprinting: two RacketStore installs
/// with *overlapping* install intervals must be different physical devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    /// First instant contained in the interval.
    pub start: SimTime,
    /// First instant after the interval.
    pub end: SimTime,
}

impl TimeInterval {
    /// Create an interval; panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "interval end before start");
        TimeInterval { start, end }
    }

    /// The interval's length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Whether `t` falls inside `[start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two intervals share any instant.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_days(2).as_secs(), 2 * DAY);
        assert_eq!(SimTime::from_hours(3).as_secs(), 3 * HOUR);
        assert_eq!(SimTime::from_mins(5).as_secs(), 300);
        assert_eq!(SimDuration::from_days(1).as_days(), 1.0);
        assert_eq!(SimDuration::from_hours(2).as_hours(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_days(1) + SimDuration::from_hours(6);
        assert_eq!(t.as_secs(), DAY + 6 * HOUR);
        assert_eq!((t - SimTime::from_days(1)).as_hours(), 6.0);
        assert_eq!(t.day_index(), 1);
    }

    #[test]
    fn signed_delta_handles_past_installs() {
        let install = SimTime::from_days(10);
        let review = SimTime::from_days(3);
        // Review predates the last install: negative delta, excluded in §6.3.
        assert!(review.signed_delta_secs(install) < 0);
        assert_eq!(review.saturating_since(install), SimDuration::ZERO);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_days(2) + SimDuration::from_secs(3 * HOUR + 4 * MINUTE + 5);
        assert_eq!(t.to_string(), "d2+03:04:05");
    }

    #[test]
    fn interval_overlap() {
        let a = TimeInterval::new(SimTime::from_days(0), SimTime::from_days(2));
        let b = TimeInterval::new(SimTime::from_days(1), SimTime::from_days(3));
        let c = TimeInterval::new(SimTime::from_days(2), SimTime::from_days(4));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
        assert!(a.contains(SimTime::from_days(1)));
        assert!(!a.contains(SimTime::from_days(2)));
    }

    #[test]
    #[should_panic(expected = "interval end before start")]
    fn interval_rejects_reversed_bounds() {
        TimeInterval::new(SimTime::from_days(2), SimTime::from_days(1));
    }
}
