//! The two snapshot formats the RacketStore app reports (§3).
//!
//! * **Fast snapshots** fire every 5 s: identifiers, foreground app, screen
//!   and battery status, and install/uninstall deltas since the previous
//!   report (with install time, last update, permissions and apk MD5 for
//!   each newly installed app).
//! * **Slow snapshots** fire every 2 min: identifiers (including the Android
//!   ID), registered accounts, save-mode status and the list of stopped
//!   apps.
//!
//! The study collected 57,770,204 fast and 592,045 slow snapshots (§5).

use crate::account::RegisteredAccount;
use crate::app::{AppId, InstalledApp};
use crate::id::{AndroidId, InstallId, ParticipantId};
use crate::review::ReviewEvent;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Cadence of the fast snapshot collector.
pub const FAST_SNAPSHOT_PERIOD_SECS: u64 = 5;
/// Cadence of the slow snapshot collector.
pub const SLOW_SNAPSHOT_PERIOD_SECS: u64 = 120;

/// An install/uninstall delta carried by a fast snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InstallDelta {
    /// An app appeared since the last report.
    Installed(InstalledApp),
    /// An app disappeared since the last report.
    Uninstalled {
        /// The removed app.
        app: AppId,
    },
}

impl InstallDelta {
    /// The app the delta concerns.
    pub fn app(&self) -> AppId {
        match self {
            InstallDelta::Installed(info) => info.app,
            InstallDelta::Uninstalled { app } => *app,
        }
    }

    /// Whether this is an install (vs. uninstall).
    pub fn is_install(&self) -> bool {
        matches!(self, InstallDelta::Installed(_))
    }
}

/// A fast (5 s) snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastSnapshot {
    /// Install ID of the reporting RacketStore instance.
    pub install_id: InstallId,
    /// Participant code the instance was signed in with.
    pub participant_id: ParticipantId,
    /// Capture time.
    pub time: SimTime,
    /// App currently in the foreground, if the screen is on and one is.
    pub foreground_app: Option<AppId>,
    /// Whether the screen is on.
    pub screen_on: bool,
    /// Battery level, 0–100.
    pub battery_pct: u8,
    /// Install/uninstall deltas since the previous fast snapshot.
    pub install_events: Vec<InstallDelta>,
}

/// A slow (2 min) snapshot.
///
/// `Serialize`/`Deserialize` are hand-written (the derive supports no
/// field attributes): `review_events` is emitted only when non-empty and
/// defaults to empty when absent, so review-off studies serialize
/// byte-identically to the pre-review format and legacy snapshot files
/// still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowSnapshot {
    /// Install ID of the reporting RacketStore instance.
    pub install_id: InstallId,
    /// Participant code the instance was signed in with.
    pub participant_id: ParticipantId,
    /// Android ID; `None` on models where the API was incompatible
    /// (Appendix A), which forces fingerprinting to fall back to install
    /// intervals and Jaccard similarity.
    pub android_id: Option<AndroidId>,
    /// Capture time.
    pub time: SimTime,
    /// Accounts registered on the device; empty if `GET_ACCOUNTS` was not
    /// granted by the participant.
    pub accounts: Vec<RegisteredAccount>,
    /// Whether battery save mode is active.
    pub save_mode: bool,
    /// Apps currently in the Android stopped state.
    pub stopped_apps: Vec<AppId>,
    /// Reviews posted from this device since the previous slow snapshot.
    /// Empty unless the collector has review collection enabled.
    pub review_events: Vec<ReviewEvent>,
}

impl Serialize for SlowSnapshot {
    fn to_content(&self) -> serde::Content {
        let mut entries = vec![
            ("install_id".to_string(), self.install_id.to_content()),
            (
                "participant_id".to_string(),
                self.participant_id.to_content(),
            ),
            ("android_id".to_string(), self.android_id.to_content()),
            ("time".to_string(), self.time.to_content()),
            ("accounts".to_string(), self.accounts.to_content()),
            ("save_mode".to_string(), self.save_mode.to_content()),
            ("stopped_apps".to_string(), self.stopped_apps.to_content()),
        ];
        if !self.review_events.is_empty() {
            entries.push(("review_events".to_string(), self.review_events.to_content()));
        }
        serde::Content::Map(entries)
    }
}

impl Deserialize for SlowSnapshot {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        use serde::__private::field;
        Ok(SlowSnapshot {
            install_id: Deserialize::from_content(field(c, "install_id")?)?,
            participant_id: Deserialize::from_content(field(c, "participant_id")?)?,
            android_id: Deserialize::from_content(field(c, "android_id")?)?,
            time: Deserialize::from_content(field(c, "time")?)?,
            accounts: Deserialize::from_content(field(c, "accounts")?)?,
            save_mode: Deserialize::from_content(field(c, "save_mode")?)?,
            stopped_apps: Deserialize::from_content(field(c, "stopped_apps")?)?,
            review_events: match field(c, "review_events") {
                Ok(v) => Deserialize::from_content(v)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// Either snapshot kind, as shipped through the collection pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Snapshot {
    /// A fast (5 s) snapshot.
    Fast(FastSnapshot),
    /// A slow (2 min) snapshot.
    Slow(SlowSnapshot),
}

impl Snapshot {
    /// Capture time of the snapshot.
    pub fn time(&self) -> SimTime {
        match self {
            Snapshot::Fast(s) => s.time,
            Snapshot::Slow(s) => s.time,
        }
    }

    /// The reporting install ID.
    pub fn install_id(&self) -> InstallId {
        match self {
            Snapshot::Fast(s) => s.install_id,
            Snapshot::Slow(s) => s.install_id,
        }
    }

    /// The participant the install is signed in as.
    pub fn participant_id(&self) -> ParticipantId {
        match self {
            Snapshot::Fast(s) => s.participant_id,
            Snapshot::Slow(s) => s.participant_id,
        }
    }

    /// Whether this is a fast snapshot.
    pub fn is_fast(&self) -> bool {
        matches!(self, Snapshot::Fast(_))
    }

    /// Strip the snapshot's heap-backed internals for pooling: empties the
    /// `install_events` / `accounts` / `stopped_apps` vectors out of the
    /// snapshot (leaving it structurally valid but hollow) and hands them
    /// to `reclaim` with their capacity intact. Snapshot batch pools call
    /// this when recycling, so steady-state collection reuses the same
    /// allocations forever.
    pub fn reclaim_buffers(&mut self, mut reclaim: impl FnMut(ReclaimedBuffer)) {
        match self {
            Snapshot::Fast(s) => {
                let mut v = std::mem::take(&mut s.install_events);
                v.clear();
                reclaim(ReclaimedBuffer::InstallEvents(v));
            }
            Snapshot::Slow(s) => {
                let mut a = std::mem::take(&mut s.accounts);
                a.clear();
                reclaim(ReclaimedBuffer::Accounts(a));
                let mut st = std::mem::take(&mut s.stopped_apps);
                st.clear();
                reclaim(ReclaimedBuffer::StoppedApps(st));
                let mut rv = std::mem::take(&mut s.review_events);
                rv.clear();
                reclaim(ReclaimedBuffer::ReviewEvents(rv));
            }
        }
    }
}

/// A heap buffer recovered from a recycled [`Snapshot`] by
/// [`Snapshot::reclaim_buffers`], tagged with which field it backed so a
/// pool can return it to the matching free list.
#[derive(Debug)]
pub enum ReclaimedBuffer {
    /// The `install_events` vector of a fast snapshot (cleared).
    InstallEvents(Vec<InstallDelta>),
    /// The `accounts` vector of a slow snapshot (cleared).
    Accounts(Vec<RegisteredAccount>),
    /// The `stopped_apps` vector of a slow snapshot (cleared).
    StoppedApps(Vec<AppId>),
    /// The `review_events` vector of a slow snapshot (cleared).
    ReviewEvents(Vec<ReviewEvent>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::PermissionProfile;
    use crate::ApkHash;

    fn fast(t: u64) -> FastSnapshot {
        FastSnapshot {
            install_id: InstallId(1234567890),
            participant_id: ParticipantId(111111),
            time: SimTime::from_secs(t),
            foreground_app: Some(AppId(3)),
            screen_on: true,
            battery_pct: 88,
            install_events: vec![],
        }
    }

    #[test]
    fn cadences_match_paper() {
        assert_eq!(FAST_SNAPSHOT_PERIOD_SECS, 5);
        assert_eq!(SLOW_SNAPSHOT_PERIOD_SECS, 120);
    }

    #[test]
    fn delta_accessors() {
        let installed = InstallDelta::Installed(InstalledApp::fresh(
            AppId(7),
            SimTime::from_days(1),
            PermissionProfile::default(),
            ApkHash([2; 16]),
        ));
        assert_eq!(installed.app(), AppId(7));
        assert!(installed.is_install());

        let removed = InstallDelta::Uninstalled { app: AppId(8) };
        assert_eq!(removed.app(), AppId(8));
        assert!(!removed.is_install());
    }

    #[test]
    fn snapshot_dispatch() {
        let f = Snapshot::Fast(fast(10));
        assert!(f.is_fast());
        assert_eq!(f.time().as_secs(), 10);
        assert_eq!(f.install_id(), InstallId(1234567890));
        assert_eq!(f.participant_id(), ParticipantId(111111));

        let s = Snapshot::Slow(SlowSnapshot {
            install_id: InstallId(1234567890),
            participant_id: ParticipantId(111111),
            android_id: None,
            time: SimTime::from_secs(120),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![AppId(1)],
            review_events: vec![],
        });
        assert!(!s.is_fast());
        assert_eq!(s.time().as_secs(), 120);
    }

    #[test]
    fn reclaim_buffers_recovers_capacity() {
        let mut f = fast(5);
        f.install_events = Vec::with_capacity(32);
        f.install_events
            .push(InstallDelta::Uninstalled { app: AppId(1) });
        let mut snap = Snapshot::Fast(f);
        let mut events = None;
        snap.reclaim_buffers(|b| match b {
            ReclaimedBuffer::InstallEvents(v) => events = Some(v),
            other => panic!("unexpected buffer from a fast snapshot: {other:?}"),
        });
        let events = events.expect("fast snapshot yields its event buffer");
        assert!(events.is_empty(), "reclaimed buffers come back cleared");
        assert!(events.capacity() >= 32, "capacity survives reclamation");

        let mut snap = Snapshot::Slow(SlowSnapshot {
            install_id: InstallId(1),
            participant_id: ParticipantId(111111),
            android_id: None,
            time: SimTime::from_secs(1),
            accounts: Vec::with_capacity(4),
            save_mode: false,
            stopped_apps: vec![AppId(9)],
            review_events: Vec::with_capacity(2),
        });
        let mut kinds = Vec::new();
        snap.reclaim_buffers(|b| {
            kinds.push(match b {
                ReclaimedBuffer::InstallEvents(_) => "events",
                ReclaimedBuffer::Accounts(v) => {
                    assert!(v.capacity() >= 4);
                    "accounts"
                }
                ReclaimedBuffer::StoppedApps(v) => {
                    assert!(v.is_empty());
                    "stopped"
                }
                ReclaimedBuffer::ReviewEvents(v) => {
                    assert!(v.is_empty());
                    assert!(v.capacity() >= 2);
                    "reviews"
                }
            });
        });
        assert_eq!(kinds, ["accounts", "stopped", "reviews"]);
    }

    #[test]
    fn snapshots_serialize() {
        let s = Snapshot::Fast(fast(42));
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    fn slow_with_reviews(review_events: Vec<crate::review::ReviewEvent>) -> SlowSnapshot {
        SlowSnapshot {
            install_id: InstallId(42),
            participant_id: ParticipantId(111111),
            android_id: Some(AndroidId(7)),
            time: SimTime::from_secs(240),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![AppId(3)],
            review_events,
        }
    }

    #[test]
    fn review_events_round_trip_and_hide_when_empty() {
        use crate::review::{Rating, ReviewEvent};
        use crate::GoogleId;

        let empty = slow_with_reviews(vec![]);
        let json = serde_json::to_string(&empty).unwrap();
        assert!(
            !json.contains("review_events"),
            "empty review list must serialize away: {json}"
        );
        assert_eq!(serde_json::from_str::<SlowSnapshot>(&json).unwrap(), empty);

        let full = slow_with_reviews(vec![ReviewEvent {
            app: AppId(3),
            reviewer: GoogleId(9),
            time: SimTime::from_secs(200),
            rating: Rating::FIVE,
            text: "great app".to_string(),
        }]);
        let json = serde_json::to_string(&full).unwrap();
        assert!(json.contains("review_events"));
        assert_eq!(serde_json::from_str::<SlowSnapshot>(&json).unwrap(), full);
    }
}
