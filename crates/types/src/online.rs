//! Online (single-pass) aggregators for streaming feature maintenance.
//!
//! The streaming analysis engine folds every decoded snapshot into
//! per-install feature state *as it arrives* (ARCHITECTURE.md §7), so the
//! aggregates here are designed around two algebraic laws that the
//! property suite (`tests/aggregators.rs`) pins:
//!
//! * **fold is order-insensitive after coalescing** — folding the same
//!   multiset of values in any order yields the same aggregate (exactly,
//!   for the integer/set/min-max aggregates; within a 1-ULP-scaled
//!   tolerance for [`Welford`], whose running mean is a float
//!   recurrence);
//! * **merge is associative with an empty identity** — state built over
//!   shards can be combined in any grouping. [`Welford`], [`MinMax`] and
//!   [`Distinct`] merges are additionally commutative; [`GapAccum`]
//!   merges by *concatenation* of adjacent time ranges, which is
//!   associative but deliberately not commutative (gaps are defined on
//!   the coalesced event order).
//!
//! Nothing here is used to *emit* the paper's feature vectors directly —
//! emission reproduces the batch formulas bit-for-bit from exact
//! sufficient statistics (see `racket-features`). [`Welford`] exists for
//! summary statistics where a tolerance is acceptable and the two-pass
//! reference would need a second scan.

use std::collections::HashSet;
use std::hash::Hash;

/// Welford's online mean/variance accumulator.
///
/// Folds one value at a time in O(1) and merges shards with the parallel
/// (Chan et al.) update. The mean/variance agree with the two-pass
/// reference within a tolerance proportional to the magnitude of the
/// data (pinned by proptest), not bit-for-bit — use exact sums where
/// bitwise reproducibility is required.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    /// Number of folded values.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Running sum of squared deviations from the mean.
    pub m2: f64,
}

impl Welford {
    /// The empty accumulator (merge identity).
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold one value.
    pub fn fold(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator built over a disjoint shard of the data.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.count += other.count;
    }

    /// Population variance (0.0 when fewer than two values were folded).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        self.m2 / self.count as f64
    }
}

/// Exact running minimum/maximum over folded `f64` values.
///
/// Fold and merge are both exact (`f64::min`/`f64::max` latches), so the
/// aggregate is bitwise identical under any permutation or sharding of
/// non-NaN inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Number of folded values.
    pub count: u64,
    /// Smallest value folded so far (`f64::INFINITY` while empty).
    pub min: f64,
    /// Largest value folded so far (`f64::NEG_INFINITY` while empty).
    pub max: f64,
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MinMax {
    /// The empty accumulator (merge identity).
    pub fn new() -> Self {
        MinMax::default()
    }

    /// Fold one value.
    pub fn fold(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &MinMax) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Distinct-set cardinality accumulator (exact, not a sketch).
///
/// The paper's fleets are hundreds of devices with dozens of accounts and
/// apps each, so an exact `HashSet` costs less than a sketch would and
/// keeps the streaming feature vectors *equal* to batch, not approximately
/// equal. Fold is insertion; merge is union — both order-insensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distinct<T: Eq + Hash> {
    set: HashSet<T>,
}

impl<T: Eq + Hash> Default for Distinct<T> {
    fn default() -> Self {
        Distinct {
            set: HashSet::new(),
        }
    }
}

impl<T: Eq + Hash + Clone> Distinct<T> {
    /// The empty set (merge identity).
    pub fn new() -> Self {
        Distinct {
            set: HashSet::new(),
        }
    }

    /// Fold one value; returns `true` if it was new.
    pub fn fold(&mut self, value: T) -> bool {
        self.set.insert(value)
    }

    /// Merge (union) another set into this one.
    pub fn merge(&mut self, other: &Distinct<T>) {
        for v in &other.set {
            self.set.insert(v.clone());
        }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no value has been folded.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `value` has been folded.
    pub fn contains(&self, value: &T) -> bool {
        self.set.contains(value)
    }
}

/// Inter-event-gap accumulator over a time-coalesced event stream.
///
/// Folding event times **in nondecreasing order** accumulates the exact
/// integer gaps (in seconds) between consecutive events: count, sum, min
/// and max. Merging two accumulators built over *adjacent* time ranges
/// appends the later one, bridging the boundary gap — an associative
/// operation with [`GapAccum::new`] as identity, but (unlike the other
/// aggregates) not commutative: gaps are defined on the coalesced order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapAccum {
    /// First event time folded (seconds), if any.
    pub first: Option<u64>,
    /// Last event time folded (seconds), if any.
    pub last: Option<u64>,
    /// Number of gaps (= events − 1 when non-empty).
    pub count: u64,
    /// Sum of all gaps, in seconds (exact).
    pub sum: u64,
    /// Smallest gap, in seconds (`u64::MAX` while no gap exists).
    pub min: u64,
    /// Largest gap, in seconds (0 while no gap exists).
    pub max: u64,
}

impl Default for GapAccum {
    fn default() -> Self {
        GapAccum::new()
    }
}

impl GapAccum {
    /// The empty accumulator (append identity).
    pub fn new() -> Self {
        GapAccum {
            first: None,
            last: None,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Fold the next event time (seconds). Must be ≥ the previous one.
    ///
    /// # Panics
    /// If `t` precedes the last folded time — callers coalesce (sort)
    /// events before folding.
    pub fn fold(&mut self, t: u64) {
        if let Some(last) = self.last {
            assert!(t >= last, "events must fold in nondecreasing time order");
            let gap = t - last;
            self.count += 1;
            self.sum += gap;
            self.min = self.min.min(gap);
            self.max = self.max.max(gap);
        } else {
            self.first = Some(t);
        }
        self.last = Some(t);
    }

    /// Append an accumulator built over the *following* time range,
    /// bridging the boundary gap between `self.last` and `other.first`.
    ///
    /// # Panics
    /// If `other` starts before `self` ends.
    pub fn append(&mut self, other: &GapAccum) {
        let Some(other_first) = other.first else {
            return; // appending the identity
        };
        if let Some(last) = self.last {
            assert!(
                other_first >= last,
                "appended range must start after this one ends"
            );
            let bridge = other_first - last;
            self.count += 1 + other.count;
            self.sum += bridge + other.sum;
            self.min = self.min.min(bridge).min(other.min);
            self.max = self.max.max(bridge).max(other.max);
        } else {
            self.first = other.first;
            self.count = other.count;
            self.sum = other.sum;
            self.min = other.min;
            self.max = other.max;
        }
        self.last = other.last;
    }

    /// Mean gap in seconds, if any gap exists.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_closely() {
        let xs = [3.5, -1.0, 2.25, 8.0, 0.5, 4.75];
        let mut w = Welford::new();
        for &x in &xs {
            w.fold(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count, xs.len() as u64);
    }

    #[test]
    fn welford_merge_is_identity_safe() {
        let mut a = Welford::new();
        let empty = Welford::new();
        a.fold(1.0);
        a.fold(3.0);
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before);
        let mut b = Welford::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn minmax_folds_and_merges() {
        let mut a = MinMax::new();
        a.fold(2.0);
        a.fold(-5.0);
        let mut b = MinMax::new();
        b.fold(9.0);
        a.merge(&b);
        assert_eq!(a.min, -5.0);
        assert_eq!(a.max, 9.0);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn distinct_counts_unique_values() {
        let mut d = Distinct::new();
        assert!(d.fold(7u32));
        assert!(!d.fold(7u32));
        assert!(d.fold(9u32));
        let mut e = Distinct::new();
        e.fold(9u32);
        e.fold(11u32);
        d.merge(&e);
        assert_eq!(d.len(), 3);
        assert!(d.contains(&11));
    }

    #[test]
    fn gap_accum_matches_windowed_gaps() {
        let times = [10u64, 25, 25, 100];
        let mut g = GapAccum::new();
        for &t in &times {
            g.fold(t);
        }
        assert_eq!(g.count, 3);
        assert_eq!(g.sum, 90);
        assert_eq!(g.min, 0);
        assert_eq!(g.max, 75);
        assert_eq!(g.mean(), Some(30.0));
    }

    #[test]
    fn gap_append_bridges_ranges() {
        let times = [5u64, 8, 20, 21, 50];
        for split in 0..=times.len() {
            let mut a = GapAccum::new();
            for &t in &times[..split] {
                a.fold(t);
            }
            let mut b = GapAccum::new();
            for &t in &times[split..] {
                b.fold(t);
            }
            let mut whole = GapAccum::new();
            for &t in &times {
                whole.fold(t);
            }
            a.append(&b);
            assert_eq!(a, whole, "split at {split}");
        }
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn gap_fold_rejects_out_of_order_events() {
        let mut g = GapAccum::new();
        g.fold(10);
        g.fold(5);
    }
}
