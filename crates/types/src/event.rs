//! Device events.
//!
//! Figure 1 of the paper plots per-device *interaction timelines* whose
//! y-axis encodes event types (1 = screen interaction, 2 = app to
//! foreground, 3 = review posted, 4 = app installed). [`DeviceEvent`] is the
//! ground-truth event stream the fleet simulator produces; the collection
//! pipeline only ever sees its *sampled* projection through snapshots.

use crate::account::AccountId;
use crate::app::AppId;
use crate::id::DeviceId;
use crate::review::Rating;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// What happened in a [`DeviceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// An app was installed.
    AppInstalled {
        /// The installed app.
        app: AppId,
    },
    /// An app was uninstalled.
    AppUninstalled {
        /// The removed app.
        app: AppId,
    },
    /// An app was brought to the foreground.
    AppOpened {
        /// The opened app.
        app: AppId,
        /// How long it stayed in the foreground, in seconds.
        foreground_secs: u64,
    },
    /// The user force-stopped an app (§6.3 "Stopped Apps").
    AppStopped {
        /// The stopped app.
        app: AppId,
    },
    /// A review was posted for an app from an account on this device.
    ReviewPosted {
        /// The reviewed app.
        app: AppId,
        /// The posting Gmail account.
        account: AccountId,
        /// The star rating given.
        rating: Rating,
    },
    /// An account was registered on the device.
    AccountRegistered {
        /// The new account.
        account: AccountId,
    },
    /// The screen turned on.
    ScreenOn,
    /// The screen turned off.
    ScreenOff,
}

impl EventKind {
    /// The Figure 1 timeline level of this event, if it appears there.
    ///
    /// `1` screen interaction, `2` foreground, `3` review, `4` install.
    pub fn timeline_level(&self) -> Option<u8> {
        match self {
            EventKind::ScreenOn | EventKind::ScreenOff => Some(1),
            EventKind::AppOpened { .. } => Some(2),
            EventKind::ReviewPosted { .. } => Some(3),
            EventKind::AppInstalled { .. } => Some(4),
            _ => None,
        }
    }

    /// The app this event concerns, if any.
    pub fn app(&self) -> Option<AppId> {
        match self {
            EventKind::AppInstalled { app }
            | EventKind::AppUninstalled { app }
            | EventKind::AppOpened { app, .. }
            | EventKind::AppStopped { app }
            | EventKind::ReviewPosted { app, .. } => Some(*app),
            _ => None,
        }
    }
}

/// A timestamped event on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceEvent {
    /// The device the event occurred on.
    pub device: DeviceId,
    /// When it occurred.
    pub time: SimTime,
    /// What happened.
    pub kind: EventKind,
}

impl DeviceEvent {
    /// Construct an event.
    pub fn new(device: DeviceId, time: SimTime, kind: EventKind) -> Self {
        DeviceEvent { device, time, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_levels_match_figure_1() {
        let app = AppId(1);
        assert_eq!(EventKind::ScreenOn.timeline_level(), Some(1));
        assert_eq!(
            EventKind::AppOpened {
                app,
                foreground_secs: 30
            }
            .timeline_level(),
            Some(2)
        );
        assert_eq!(
            EventKind::ReviewPosted {
                app,
                account: AccountId(1),
                rating: Rating::FIVE
            }
            .timeline_level(),
            Some(3)
        );
        assert_eq!(EventKind::AppInstalled { app }.timeline_level(), Some(4));
        assert_eq!(EventKind::AppUninstalled { app }.timeline_level(), None);
        assert_eq!(EventKind::AppStopped { app }.timeline_level(), None);
    }

    #[test]
    fn event_app_extraction() {
        let app = AppId(9);
        assert_eq!(EventKind::AppStopped { app }.app(), Some(app));
        assert_eq!(EventKind::ScreenOff.app(), None);
        assert_eq!(
            EventKind::AccountRegistered {
                account: AccountId(2)
            }
            .app(),
            None
        );
    }

    #[test]
    fn event_construction() {
        let e = DeviceEvent::new(
            DeviceId(5),
            SimTime::from_hours(1),
            EventKind::AppInstalled { app: AppId(2) },
        );
        assert_eq!(e.device, DeviceId(5));
        assert_eq!(e.time.as_secs(), 3600);
    }
}
