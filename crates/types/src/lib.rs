//! Core domain types for the RacketStore reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for devices, installs, participants and accounts;
//! simulated time; the Android permission catalog; app metadata; device
//! events; the two snapshot formats collected by the RacketStore app
//! (fast, every 5 s; slow, every 2 min); and Google Play reviews.
//!
//! The types mirror §3 ("Measurements Infrastructure") and §5 ("Data") of
//! *RacketStore: Measurements of ASO Deception in Google Play via Mobile and
//! App Usage* (IMC 2021). Everything is plain data with [`serde`] support so
//! the collection pipeline can serialize snapshots the way the real app
//! shipped them to its backend.

#![deny(missing_docs)]

pub mod account;
pub mod app;
pub mod event;
pub mod id;
pub mod metrics;
pub mod online;
pub mod permission;
pub mod review;
pub mod snapshot;
pub mod time;

pub use account::{AccountId, AccountService, RegisteredAccount};
pub use app::{ApkHash, AppCategory, AppId, AppMetadata, InstalledApp};
pub use event::{DeviceEvent, EventKind};
pub use id::{AndroidId, DeviceId, GoogleId, InstallId, ParticipantId};
pub use metrics::{FaultCounters, PipelineMetrics};
pub use online::{Distinct, GapAccum, MinMax, Welford};
pub use permission::{Permission, PermissionProfile};
pub use review::{Rating, RatingSummary, Review, ReviewEvent};
pub use snapshot::{FastSnapshot, InstallDelta, ReclaimedBuffer, SlowSnapshot, Snapshot};
pub use time::{SimDuration, SimTime, TimeInterval};

/// Ground-truth cohort of a study participant, as recruited in §4.
///
/// Workers were recruited from Facebook ASO groups; regular users through
/// Instagram ads. This is the label the device classifier of §8 predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Cohort {
    /// A regular Google Play user.
    Regular,
    /// An app-search-optimization worker.
    Worker,
}

impl Cohort {
    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            Cohort::Regular => "regular",
            Cohort::Worker => "worker",
        }
    }
}

/// Fine-grained behavioural persona used by the fleet simulator.
///
/// The paper distinguishes *professional* (dedicated) workers, who use
/// devices and accounts exclusively for ASO work, from *organic* workers,
/// who blend promotion with personal activity (§2). §8.2 finds 123 of 178
/// worker devices organic-indicative and 55 promotion-dedicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Persona {
    /// Personal device use only.
    Regular,
    /// ASO work hidden among personal device use.
    OrganicWorker,
    /// Device dedicated to app promotion.
    DedicatedWorker,
}

impl Persona {
    /// The recruitment cohort this persona belongs to.
    pub fn cohort(self) -> Cohort {
        match self {
            Persona::Regular => Cohort::Regular,
            Persona::OrganicWorker | Persona::DedicatedWorker => Cohort::Worker,
        }
    }

    /// Whether the persona performs any paid promotion work.
    pub fn is_worker(self) -> bool {
        self.cohort() == Cohort::Worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persona_cohorts() {
        assert_eq!(Persona::Regular.cohort(), Cohort::Regular);
        assert_eq!(Persona::OrganicWorker.cohort(), Cohort::Worker);
        assert_eq!(Persona::DedicatedWorker.cohort(), Cohort::Worker);
        assert!(!Persona::Regular.is_worker());
        assert!(Persona::DedicatedWorker.is_worker());
    }

    #[test]
    fn cohort_labels() {
        assert_eq!(Cohort::Regular.label(), "regular");
        assert_eq!(Cohort::Worker.label(), "worker");
    }
}
