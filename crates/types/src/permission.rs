//! The Android permission catalog used by the study.
//!
//! §6.3 ("App Permissions") compares, per app, the number of *dangerous*
//! permissions against the total number of requested permissions (Figure 11),
//! and §7.1 uses four permission-derived features: counts of normal and
//! dangerous permissions requested, and counts granted / denied by the user.
//!
//! We model the subset of the Android permission space that matters for
//! those analyses: a fixed catalog of well-known permissions, each either
//! *normal* (granted at install time) or *dangerous* (runtime-granted, like
//! the two RacketStore itself requests).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single Android permission.
///
/// The variant set covers the permissions most commonly requested by Play
/// Store apps plus those named in the paper (e.g. the install-time
/// permissions RacketStore itself uses, and `PACKAGE_USAGE_STATS` /
/// `GET_ACCOUNTS` which it asks the participant to grant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants mirror the Android permission names
pub enum Permission {
    // -- normal (install-time) --
    Internet,
    AccessNetworkState,
    AccessWifiState,
    WakeLock,
    ReceiveBootCompleted,
    Vibrate,
    Flashlight,
    SetWallpaper,
    Nfc,
    Bluetooth,
    ForegroundService,
    RequestInstallPackages,
    GetTasks,
    // -- dangerous (runtime) --
    ReadContacts,
    WriteContacts,
    GetAccounts,
    AccessFineLocation,
    AccessCoarseLocation,
    RecordAudio,
    Camera,
    ReadExternalStorage,
    WriteExternalStorage,
    ReadPhoneState,
    CallPhone,
    ReadCallLog,
    WriteCallLog,
    SendSms,
    ReceiveSms,
    ReadSms,
    ReadCalendar,
    WriteCalendar,
    BodySensors,
    ProcessOutgoingCalls,
    // -- special / signature-level, treated as dangerous for Figure 11 --
    PackageUsageStats,
    SystemAlertWindow,
}

impl Permission {
    /// All catalog permissions, normal first then dangerous.
    pub const ALL: &'static [Permission] = &[
        Permission::Internet,
        Permission::AccessNetworkState,
        Permission::AccessWifiState,
        Permission::WakeLock,
        Permission::ReceiveBootCompleted,
        Permission::Vibrate,
        Permission::Flashlight,
        Permission::SetWallpaper,
        Permission::Nfc,
        Permission::Bluetooth,
        Permission::ForegroundService,
        Permission::RequestInstallPackages,
        Permission::GetTasks,
        Permission::ReadContacts,
        Permission::WriteContacts,
        Permission::GetAccounts,
        Permission::AccessFineLocation,
        Permission::AccessCoarseLocation,
        Permission::RecordAudio,
        Permission::Camera,
        Permission::ReadExternalStorage,
        Permission::WriteExternalStorage,
        Permission::ReadPhoneState,
        Permission::CallPhone,
        Permission::ReadCallLog,
        Permission::WriteCallLog,
        Permission::SendSms,
        Permission::ReceiveSms,
        Permission::ReadSms,
        Permission::ReadCalendar,
        Permission::WriteCalendar,
        Permission::BodySensors,
        Permission::ProcessOutgoingCalls,
        Permission::PackageUsageStats,
        Permission::SystemAlertWindow,
    ];

    /// The normal (install-time, auto-granted) permissions.
    pub fn normal() -> impl Iterator<Item = Permission> {
        Self::ALL.iter().copied().filter(|p| !p.is_dangerous())
    }

    /// The dangerous (runtime-granted) permissions.
    pub fn dangerous() -> impl Iterator<Item = Permission> {
        Self::ALL.iter().copied().filter(|p| p.is_dangerous())
    }

    /// Whether Android classifies the permission as *dangerous*.
    ///
    /// Dangerous permissions guard user-private data and require an explicit
    /// runtime grant; Figure 11 plots their count against the total.
    pub fn is_dangerous(self) -> bool {
        use Permission::*;
        !matches!(
            self,
            Internet
                | AccessNetworkState
                | AccessWifiState
                | WakeLock
                | ReceiveBootCompleted
                | Vibrate
                | Flashlight
                | SetWallpaper
                | Nfc
                | Bluetooth
                | ForegroundService
                | RequestInstallPackages
                | GetTasks
        )
    }

    /// The `android.permission.*` style name.
    pub fn android_name(self) -> &'static str {
        use Permission::*;
        match self {
            Internet => "android.permission.INTERNET",
            AccessNetworkState => "android.permission.ACCESS_NETWORK_STATE",
            AccessWifiState => "android.permission.ACCESS_WIFI_STATE",
            WakeLock => "android.permission.WAKE_LOCK",
            ReceiveBootCompleted => "android.permission.RECEIVE_BOOT_COMPLETED",
            Vibrate => "android.permission.VIBRATE",
            Flashlight => "android.permission.FLASHLIGHT",
            SetWallpaper => "android.permission.SET_WALLPAPER",
            Nfc => "android.permission.NFC",
            Bluetooth => "android.permission.BLUETOOTH",
            ForegroundService => "android.permission.FOREGROUND_SERVICE",
            RequestInstallPackages => "android.permission.REQUEST_INSTALL_PACKAGES",
            GetTasks => "android.permission.GET_TASKS",
            ReadContacts => "android.permission.READ_CONTACTS",
            WriteContacts => "android.permission.WRITE_CONTACTS",
            GetAccounts => "android.permission.GET_ACCOUNTS",
            AccessFineLocation => "android.permission.ACCESS_FINE_LOCATION",
            AccessCoarseLocation => "android.permission.ACCESS_COARSE_LOCATION",
            RecordAudio => "android.permission.RECORD_AUDIO",
            Camera => "android.permission.CAMERA",
            ReadExternalStorage => "android.permission.READ_EXTERNAL_STORAGE",
            WriteExternalStorage => "android.permission.WRITE_EXTERNAL_STORAGE",
            ReadPhoneState => "android.permission.READ_PHONE_STATE",
            CallPhone => "android.permission.CALL_PHONE",
            ReadCallLog => "android.permission.READ_CALL_LOG",
            WriteCallLog => "android.permission.WRITE_CALL_LOG",
            SendSms => "android.permission.SEND_SMS",
            ReceiveSms => "android.permission.RECEIVE_SMS",
            ReadSms => "android.permission.READ_SMS",
            ReadCalendar => "android.permission.READ_CALENDAR",
            WriteCalendar => "android.permission.WRITE_CALENDAR",
            BodySensors => "android.permission.BODY_SENSORS",
            ProcessOutgoingCalls => "android.permission.PROCESS_OUTGOING_CALLS",
            PackageUsageStats => "android.permission.PACKAGE_USAGE_STATS",
            SystemAlertWindow => "android.permission.SYSTEM_ALERT_WINDOW",
        }
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.android_name())
    }
}

/// The permission footprint of one app: what it requests, and what the user
/// granted or denied.
///
/// `granted`/`denied` only apply to dangerous permissions; normal ones are
/// auto-granted at install time (like RacketStore's own five install-time
/// permissions, §3).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PermissionProfile {
    /// Permissions declared in the app manifest.
    pub requested: Vec<Permission>,
    /// Dangerous permissions the user granted at runtime.
    pub granted: Vec<Permission>,
    /// Dangerous permissions the user denied.
    pub denied: Vec<Permission>,
}

impl PermissionProfile {
    /// Build a profile with every dangerous permission granted — the policy
    /// five of the interviewed workers reported ("grant all requested").
    pub fn grant_all(requested: Vec<Permission>) -> Self {
        let granted = requested
            .iter()
            .copied()
            .filter(|p| p.is_dangerous())
            .collect();
        PermissionProfile {
            requested,
            granted,
            denied: Vec::new(),
        }
    }

    /// Total number of requested permissions.
    pub fn total(&self) -> usize {
        self.requested.len()
    }

    /// Number of requested permissions that are dangerous (Figure 11 y-axis).
    pub fn dangerous_count(&self) -> usize {
        self.requested.iter().filter(|p| p.is_dangerous()).count()
    }

    /// Number of requested permissions that are normal.
    pub fn normal_count(&self) -> usize {
        self.total() - self.dangerous_count()
    }

    /// Ratio of dangerous to total permissions; 0 for an empty manifest.
    pub fn dangerous_ratio(&self) -> f64 {
        if self.requested.is_empty() {
            0.0
        } else {
            self.dangerous_count() as f64 / self.total() as f64
        }
    }

    /// Internal consistency: granted/denied sets are disjoint, dangerous,
    /// and subsets of the requested set.
    pub fn is_consistent(&self) -> bool {
        let dangerous_subset = |set: &[Permission]| {
            set.iter()
                .all(|p| p.is_dangerous() && self.requested.contains(p))
        };
        dangerous_subset(&self.granted)
            && dangerous_subset(&self.denied)
            && self.granted.iter().all(|p| !self.denied.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_partitions_cleanly() {
        let n = Permission::normal().count();
        let d = Permission::dangerous().count();
        assert_eq!(n + d, Permission::ALL.len());
        assert!(d > n, "catalog is dominated by dangerous permissions");
    }

    #[test]
    fn racketstore_install_time_permissions_are_normal() {
        // §3: GET_TASKS, RECEIVE_BOOT_COMPLETED, INTERNET, ACCESS_NETWORK_STATE,
        // WAKE_LOCK are auto-granted at install.
        for p in [
            Permission::GetTasks,
            Permission::ReceiveBootCompleted,
            Permission::Internet,
            Permission::AccessNetworkState,
            Permission::WakeLock,
        ] {
            assert!(!p.is_dangerous(), "{p} must be a normal permission");
        }
    }

    #[test]
    fn racketstore_runtime_permissions_are_dangerous() {
        // §3: PACKAGE_USAGE_STATS and GET_ACCOUNTS require explicit grants.
        assert!(Permission::PackageUsageStats.is_dangerous());
        assert!(Permission::GetAccounts.is_dangerous());
    }

    #[test]
    fn android_names_have_proper_prefix() {
        for p in Permission::ALL {
            assert!(p.android_name().starts_with("android.permission."));
        }
    }

    #[test]
    fn profile_counts() {
        let profile = PermissionProfile::grant_all(vec![
            Permission::Internet,
            Permission::Camera,
            Permission::ReadContacts,
        ]);
        assert_eq!(profile.total(), 3);
        assert_eq!(profile.dangerous_count(), 2);
        assert_eq!(profile.normal_count(), 1);
        assert!((profile.dangerous_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(profile.granted.len(), 2);
        assert!(profile.is_consistent());
    }

    #[test]
    fn empty_profile_ratio_is_zero() {
        assert_eq!(PermissionProfile::default().dangerous_ratio(), 0.0);
    }

    #[test]
    fn inconsistent_profile_detected() {
        let mut profile = PermissionProfile::grant_all(vec![Permission::Camera]);
        profile.denied.push(Permission::Camera); // granted AND denied
        assert!(!profile.is_consistent());

        let rogue = PermissionProfile {
            requested: vec![],
            granted: vec![Permission::Camera], // granted but never requested
            denied: vec![],
        };
        assert!(!rogue.is_consistent());
    }
}
