//! Accounts registered on a device.
//!
//! §6.2 measures the number of Gmail accounts, the number of non-Gmail
//! accounts and the number of distinct *account types* (services) per
//! device: worker devices average 28.87 Gmail accounts (max 163) while
//! regular devices max out at 10; regular devices register ~6 distinct
//! services while worker devices concentrate on Gmail plus ASO-support
//! services such as `dualspace.daemon` and `freelancer`.

use crate::id::GoogleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a registered account within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The raw numeric value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct-{}", self.0)
    }
}

/// The online service an account belongs to.
///
/// The variant set covers the services the paper names explicitly plus the
/// common social-network services that give regular devices their account
/// *type* diversity (Figure 5, center).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are service names
pub enum AccountService {
    /// Google/Gmail — required to post a Play Store review (§6.2).
    Gmail,
    WhatsApp,
    Facebook,
    Telegram,
    Instagram,
    Twitter,
    TikTok,
    Snapchat,
    Viber,
    Imo,
    Skype,
    LinkedIn,
    Outlook,
    Yahoo,
    Samsung,
    Xiaomi,
    Huawei,
    /// `dualspace.daemon` — app cloner that lets one device install the same
    /// app multiple times; indicative of ASO tooling (§6.2).
    DualSpace,
    /// Freelancing marketplace accounts used to find ASO jobs (§6.2).
    Freelancer,
    /// Mobile payment services (the paper's workers mention Easypaisa).
    Easypaisa,
    /// Any other service, keyed by an opaque tag.
    Other(u16),
}

impl AccountService {
    /// Whether the account can post Play Store reviews.
    pub fn is_gmail(self) -> bool {
        matches!(self, AccountService::Gmail)
    }

    /// Whether the service is ASO-support tooling rather than a consumer
    /// service (DualSpace for multi-install, Freelancer for job sourcing).
    pub fn is_aso_tooling(self) -> bool {
        matches!(self, AccountService::DualSpace | AccountService::Freelancer)
    }

    /// The services a *regular* device plausibly registers, in rough order
    /// of popularity; used by the persona models.
    pub fn consumer_services() -> &'static [AccountService] {
        use AccountService::*;
        &[
            WhatsApp, Facebook, Instagram, Telegram, Twitter, TikTok, Snapchat, Viber, Imo, Skype,
            LinkedIn, Outlook, Yahoo, Samsung, Xiaomi, Huawei,
        ]
    }
}

impl fmt::Display for AccountService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountService::Gmail => write!(f, "com.google"),
            AccountService::WhatsApp => write!(f, "com.whatsapp"),
            AccountService::Facebook => write!(f, "com.facebook.auth.login"),
            AccountService::Telegram => write!(f, "org.telegram.messenger"),
            AccountService::Instagram => write!(f, "com.instagram.android"),
            AccountService::Twitter => write!(f, "com.twitter.android.auth.login"),
            AccountService::TikTok => write!(f, "com.zhiliaoapp.musically"),
            AccountService::Snapchat => write!(f, "com.snapchat.android"),
            AccountService::Viber => write!(f, "com.viber.voip"),
            AccountService::Imo => write!(f, "com.imo.android.imoim"),
            AccountService::Skype => write!(f, "com.skype.raider"),
            AccountService::LinkedIn => write!(f, "com.linkedin.android"),
            AccountService::Outlook => write!(f, "com.microsoft.office.outlook"),
            AccountService::Yahoo => write!(f, "com.yahoo.mobile.client.share.sync"),
            AccountService::Samsung => write!(f, "com.osp.app.signin"),
            AccountService::Xiaomi => write!(f, "com.xiaomi"),
            AccountService::Huawei => write!(f, "com.huawei.hwid"),
            AccountService::DualSpace => write!(f, "dualspace.daemon"),
            AccountService::Freelancer => write!(f, "com.freelancer.android.messenger"),
            AccountService::Easypaisa => write!(f, "pk.com.telenor.phoenix"),
            AccountService::Other(tag) => write!(f, "other.service.{tag}"),
        }
    }
}

/// One account registered on a device, as reported by a slow snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegisteredAccount {
    /// Simulation-unique account identity.
    pub id: AccountId,
    /// The service the account belongs to.
    pub service: AccountService,
    /// The Google ID behind the account, present only for Gmail accounts
    /// once the Google-ID crawler has resolved the address (§5).
    pub google_id: Option<GoogleId>,
}

impl RegisteredAccount {
    /// A Gmail account whose Google ID is already resolved.
    pub fn gmail(id: AccountId, google_id: GoogleId) -> Self {
        RegisteredAccount {
            id,
            service: AccountService::Gmail,
            google_id: Some(google_id),
        }
    }

    /// A non-Gmail account on the given service.
    pub fn non_gmail(id: AccountId, service: AccountService) -> Self {
        debug_assert!(!service.is_gmail());
        RegisteredAccount {
            id,
            service,
            google_id: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmail_detection() {
        assert!(AccountService::Gmail.is_gmail());
        assert!(!AccountService::WhatsApp.is_gmail());
        assert!(!AccountService::Other(3).is_gmail());
    }

    #[test]
    fn aso_tooling_detection() {
        assert!(AccountService::DualSpace.is_aso_tooling());
        assert!(AccountService::Freelancer.is_aso_tooling());
        assert!(!AccountService::Gmail.is_aso_tooling());
        assert!(!AccountService::Facebook.is_aso_tooling());
    }

    #[test]
    fn consumer_services_exclude_gmail_and_tooling() {
        for s in AccountService::consumer_services() {
            assert!(!s.is_gmail());
            assert!(!s.is_aso_tooling());
        }
        assert!(AccountService::consumer_services().len() >= 15);
    }

    #[test]
    fn display_names_are_android_account_types() {
        assert_eq!(AccountService::Gmail.to_string(), "com.google");
        assert_eq!(AccountService::DualSpace.to_string(), "dualspace.daemon");
        assert_eq!(AccountService::Other(7).to_string(), "other.service.7");
    }

    #[test]
    fn constructors() {
        let g = RegisteredAccount::gmail(AccountId(1), GoogleId(10));
        assert!(g.service.is_gmail());
        assert_eq!(g.google_id, Some(GoogleId(10)));

        let f = RegisteredAccount::non_gmail(AccountId(2), AccountService::Facebook);
        assert!(f.google_id.is_none());
    }
}
