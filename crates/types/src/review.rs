//! Google Play reviews.
//!
//! The review crawler collected 110,511,637 reviews for 12,341 apps, each
//! with the reviewer's Google ID, a 1-second-granularity timestamp and a
//! star rating (§5). Reviews are joined to devices through the Google IDs
//! of the Gmail accounts registered on each device.

use crate::app::AppId;
use crate::id::GoogleId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 1–5 star rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rating(u8);

impl Rating {
    /// One star.
    pub const ONE: Rating = Rating(1);
    /// Two stars.
    pub const TWO: Rating = Rating(2);
    /// Three stars.
    pub const THREE: Rating = Rating(3);
    /// Four stars.
    pub const FOUR: Rating = Rating(4);
    /// Five stars — the rating paid reviews overwhelmingly carry (§2).
    pub const FIVE: Rating = Rating(5);

    /// Construct a rating, returning `None` outside 1..=5.
    pub fn new(stars: u8) -> Option<Rating> {
        (1..=5).contains(&stars).then_some(Rating(stars))
    }

    /// The star value.
    pub const fn stars(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}★", self.0)
    }
}

/// One Play-Store review as the crawler sees it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Review {
    /// The reviewed app.
    pub app: AppId,
    /// The reviewer's Google identity.
    pub reviewer: GoogleId,
    /// Posting time, 1-second granularity.
    pub posted_at: SimTime,
    /// The star rating.
    pub rating: Rating,
}

impl Review {
    /// Construct a review.
    pub fn new(app: AppId, reviewer: GoogleId, posted_at: SimTime, rating: Rating) -> Self {
        Review {
            app,
            reviewer,
            posted_at,
            rating,
        }
    }
}

/// A review *as witnessed on the posting device* and carried by slow
/// snapshots when review collection is enabled.
///
/// Unlike the store-side [`Review`], a `ReviewEvent` keeps the review
/// text: the deception study's near-duplicate detector (§6) needs the
/// text to find copy-pasted campaign templates across accounts, and only
/// the instrumented device sees which of its accounts posted it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReviewEvent {
    /// The reviewed app.
    pub app: AppId,
    /// The Google identity that posted the review.
    pub reviewer: GoogleId,
    /// Posting time, 1-second granularity.
    pub time: SimTime,
    /// The star rating.
    pub rating: Rating,
    /// The review text (may be empty).
    pub text: String,
}

/// Aggregate rating statistics for an app, the quantity ASO campaigns try
/// to manipulate (a 1-star aggregate increase raises conversion up to 280%,
/// §2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RatingSummary {
    /// Number of reviews aggregated.
    pub count: u64,
    /// Sum of star values.
    pub star_sum: u64,
}

impl RatingSummary {
    /// Fold one review into the summary.
    pub fn add(&mut self, rating: Rating) {
        self.count += 1;
        self.star_sum += u64::from(rating.stars());
    }

    /// The aggregate (mean) rating, or `None` with no reviews.
    pub fn aggregate(&self) -> Option<f64> {
        (self.count > 0).then(|| self.star_sum as f64 / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_bounds() {
        assert!(Rating::new(0).is_none());
        assert!(Rating::new(6).is_none());
        assert_eq!(Rating::new(3), Some(Rating::THREE));
        assert_eq!(Rating::FIVE.stars(), 5);
        assert_eq!(Rating::FIVE.to_string(), "5★");
    }

    #[test]
    fn rating_summary_aggregates() {
        let mut s = RatingSummary::default();
        assert_eq!(s.aggregate(), None);
        s.add(Rating::FIVE);
        s.add(Rating::ONE);
        assert_eq!(s.count, 2);
        assert_eq!(s.aggregate(), Some(3.0));
    }

    #[test]
    fn review_round_trips_through_serde() {
        let r = Review::new(AppId(4), GoogleId(77), SimTime::from_days(3), Rating::FOUR);
        let json = serde_json::to_string(&r).unwrap();
        let back: Review = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
