//! Pipeline throughput metrics.
//!
//! The paper's study ingested 58.3M snapshots from 803 devices (§5); the
//! reproduction's simulate→collect→analyze pipeline reports its own
//! throughput through [`PipelineMetrics`], filled in by the study driver
//! and printed by the `study_summary` experiment binary. The struct is the
//! observable half of the parallelism contract documented in
//! `ARCHITECTURE.md`: stage wall times shrink with worker threads while
//! every count stays bit-identical.

/// Wall-clock and throughput statistics for one end-to-end study run.
///
/// All counts are thread-count independent (the pipeline's determinism
/// contract); only the `*_secs` fields vary with `threads`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Worker threads the parallel stages ran with.
    pub threads: usize,
    /// Wall time of fleet generation (history simulation), in seconds.
    pub fleet_gen_secs: f64,
    /// Wall time of the monitored-window simulation + snapshot collection
    /// loop, in seconds.
    pub simulate_secs: f64,
    /// Wall time of database assembly (coalescing, crawl joins, feature
    /// inputs), in seconds.
    pub assemble_secs: f64,
    /// Snapshots ingested by the collection server.
    pub snapshots_ingested: u64,
    /// Compressed bytes uploaded over the wire path (0 on the direct,
    /// in-process path, which skips framing and compression).
    pub bytes_compressed: u64,
    /// Install records held per ingest shard at the end of the run
    /// (empty when the run used the unsharded wire path only).
    pub shard_occupancy: Vec<usize>,
}

impl PipelineMetrics {
    /// Total pipeline wall time across the three stages, in seconds.
    pub fn total_secs(&self) -> f64 {
        self.fleet_gen_secs + self.simulate_secs + self.assemble_secs
    }

    /// Ingestion throughput over the simulate stage, in snapshots/second.
    pub fn snapshots_per_sec(&self) -> f64 {
        if self.simulate_secs > 0.0 {
            self.snapshots_ingested as f64 / self.simulate_secs
        } else {
            0.0
        }
    }

    /// Multi-line human-readable report (what `study_summary` prints).
    pub fn report(&self) -> String {
        let occupancy = if self.shard_occupancy.is_empty() {
            "unsharded (wire path)".to_string()
        } else {
            let min = self.shard_occupancy.iter().min().copied().unwrap_or(0);
            let max = self.shard_occupancy.iter().max().copied().unwrap_or(0);
            format!(
                "{} shards, {min}..{max} records/shard",
                self.shard_occupancy.len()
            )
        };
        format!(
            "threads: {}\n\
             fleet generation: {:.2}s\n\
             simulate+collect: {:.2}s ({:.0} snapshots/s)\n\
             assembly:         {:.2}s\n\
             total:            {:.2}s\n\
             snapshots ingested: {}\n\
             bytes compressed:   {}\n\
             shard occupancy:    {occupancy}",
            self.threads,
            self.fleet_gen_secs,
            self.simulate_secs,
            self.snapshots_per_sec(),
            self.assemble_secs,
            self.total_secs(),
            self.snapshots_ingested,
            self.bytes_compressed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_throughput() {
        let m = PipelineMetrics {
            threads: 4,
            fleet_gen_secs: 1.0,
            simulate_secs: 2.0,
            assemble_secs: 0.5,
            snapshots_ingested: 10_000,
            bytes_compressed: 0,
            shard_occupancy: vec![10, 12, 9, 11],
        };
        assert!((m.total_secs() - 3.5).abs() < 1e-12);
        assert!((m.snapshots_per_sec() - 5_000.0).abs() < 1e-9);
        let report = m.report();
        assert!(report.contains("4 shards"));
        assert!(report.contains("threads: 4"));
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = PipelineMetrics::default();
        assert_eq!(m.snapshots_per_sec(), 0.0);
        assert!(m.report().contains("unsharded"));
    }
}
