//! Pipeline throughput metrics.
//!
//! The paper's study ingested 58.3M snapshots from 803 devices (§5); the
//! reproduction's simulate→collect→analyze pipeline reports its own
//! throughput through [`PipelineMetrics`], printed by the `study_summary`
//! experiment binary. The struct is the observable half of the parallelism
//! contract documented in `ARCHITECTURE.md`: stage wall times shrink with
//! worker threads while every count stays bit-identical.
//!
//! Since the observability refactor the struct is a *projection*, not a
//! ledger: every stage records into the study's `racket_obs::Registry`
//! under the canonical names in [`keys`], and
//! [`PipelineMetrics::from_snapshot`] derives the report from a frozen
//! [`racket_obs::RegistrySnapshot`]. The registry is the single source of
//! truth; nothing in it ever enters an output fingerprint.

use racket_obs::{Registry, RegistrySnapshot};

/// Canonical registry names for the pipeline's counters, gauges and spans.
///
/// Every stage that records into the study registry uses these constants,
/// and [`PipelineMetrics::from_snapshot`] reads them back; string literals
/// never appear at call sites, so the emitter and the recorders cannot
/// drift apart.
pub mod keys {
    /// Gauge: worker threads the parallel stages ran with.
    pub const THREADS: &str = "pipeline.threads";
    /// Span: fleet generation (history simulation).
    pub const SPAN_FLEET_GEN: &str = "fleet_gen";
    /// Span: monitored-window simulation + snapshot collection loop.
    pub const SPAN_SIMULATE: &str = "simulate";
    /// Span: database assembly (coalescing, crawl joins, feature inputs).
    pub const SPAN_ASSEMBLE: &str = "assemble";
    /// Span: folding per-device streaming feature state at assemble time.
    pub const SPAN_STREAM_FOLD: &str = "assemble/stream_fold";
    /// Span: building the columnar (struct-of-arrays) snapshot store from
    /// the canonical sorted record vector (ARCHITECTURE.md §9).
    pub const SPAN_COLUMNARIZE: &str = "assemble/columnarize";
    /// Span: priming the detection service from streaming state (per-app
    /// scores + cached device vectors).
    pub const SPAN_STREAM_PRIME: &str = "analyze/stream_prime";
    /// Span: end-of-study device classification from primed streaming
    /// state (the latency the streaming engine is measured on).
    pub const SPAN_SCORE_STREAM: &str = "analyze/score_streaming";
    /// Span: device classification via the batch re-scan path (recomputes
    /// every feature from the raw record).
    pub const SPAN_SCORE_BATCH: &str = "analyze/score_batch";
    /// Span: async plane — accepting newly connected clients into a
    /// worker's poll set.
    pub const SPAN_SERVER_ACCEPT: &str = "server/accept";
    /// Span: async plane — one worker poll round (readiness scan + frame
    /// decode + admission + ingest for every ready connection).
    pub const SPAN_SERVER_POLL: &str = "server/poll";
    /// Span: async plane — rejecting a frame because the connection's
    /// bounded upload queue was full (encoding and sending the 429).
    pub const SPAN_SERVER_SHED: &str = "server/shed";
    /// Counter: async plane — uploads load-shed with a 429 because a
    /// per-connection queue was full. Varies with timing; excluded from
    /// all output fingerprints (same contract as `ingest.dup_files`).
    pub const SERVER_LOAD_SHED: &str = "server.load_shed";
    /// Counter: async plane — wedged connections recovered by a server-side
    /// stall sweep (mid-frame with no progress past the stall deadline).
    pub const SERVER_STALL_SWEEPS: &str = "server.stall_sweeps";
    /// Gauge: async plane — deepest per-connection upload queue observed
    /// by any worker (high-water mark across the run).
    pub const SERVER_QUEUE_DEPTH_PEAK: &str = "server.queue_depth_peak";
    /// Counter: snapshots ingested by the collection server.
    pub const SNAPSHOTS_INGESTED: &str = "ingest.snapshots";
    /// Counter: replayed upload files re-acked without re-ingesting.
    pub const DUP_FILES: &str = "ingest.dup_files";
    /// Gauge prefix: per-shard install-record occupancy
    /// (`ingest.shard_occupancy.0007` → records in shard 7; the index is
    /// zero-padded so gauge-name order is shard order).
    pub const SHARD_OCCUPANCY_PREFIX: &str = "ingest.shard_occupancy.";
    /// Counter: compressed bytes uploaded (incl. retransmissions).
    pub const BYTES_COMPRESSED: &str = "wire.bytes_compressed";
    /// Counter: protocol exchanges attempted (first tries + retries).
    pub const UPLOAD_ATTEMPTS: &str = "wire.attempts";
    /// Counter: exchanges retried after timeout/decode error/reset.
    pub const UPLOAD_RETRIES: &str = "wire.retries";
    /// Counter: reconnect-and-resume cycles.
    pub const RECONNECTS: &str = "wire.reconnects";
    /// Counter: simulated backoff milliseconds accumulated across retries.
    pub const BACKOFF_MS: &str = "wire.backoff_ms";
    /// Counter: exchanges abandoned after the retry budget ran out.
    pub const EXCHANGES_EXHAUSTED: &str = "wire.exhausted";
    /// Counter: duplicate/stale frames discarded by sequence-checked codecs.
    pub const STALE_FRAMES: &str = "wire.stale_frames";
    /// Counter: injected frame drops.
    pub const FAULT_DROPPED: &str = "fault.dropped";
    /// Counter: injected frame duplications.
    pub const FAULT_DUPLICATED: &str = "fault.duplicated";
    /// Counter: injected frame reorderings.
    pub const FAULT_REORDERED: &str = "fault.reordered";
    /// Counter: injected frame truncations.
    pub const FAULT_TRUNCATED: &str = "fault.truncated";
    /// Counter: injected bit corruptions.
    pub const FAULT_CORRUPTED: &str = "fault.corrupted";
    /// Counter: injected connection resets.
    pub const FAULT_DISCONNECTED: &str = "fault.disconnected";
    /// Counter: injected indefinite stalls.
    pub const FAULT_STALLED: &str = "fault.stalled";
    /// Span: campaign detection over the incremental (streaming) sketches
    /// at study-assemble time.
    pub const SPAN_CAMPAIGN_INCREMENTAL: &str = "campaign/incremental";
    /// Span: batch campaign-sketch rebuild from the install-event column
    /// family of the columnar store.
    pub const SPAN_CAMPAIGN_SHINGLE: &str = "campaign/shingle";
    /// Span: LSH banding pass proposing candidate device pairs.
    pub const SPAN_CAMPAIGN_LSH: &str = "campaign/lsh";
    /// Span: exact Jaccard + temporal co-occurrence scoring of candidates.
    pub const SPAN_CAMPAIGN_SCORE: &str = "campaign/score";
    /// Span: greedy quasi-clique mining over the co-occurrence graph.
    pub const SPAN_CAMPAIGN_MINE: &str = "campaign/mine";
    /// Span: near-duplicate review-text candidate pass (SimHash banding +
    /// Hamming verification over per-install text sketches).
    pub const SPAN_CAMPAIGN_TEXT: &str = "campaign/text";
    /// Span: batch text-sketch rebuild from the review column family of
    /// the columnar store.
    pub const SPAN_TEXT_REBUILD: &str = "campaign/text_rebuild";
    /// Counter: distinct shingles folded by campaign detection (batch
    /// rebuild path; the throughput denominator for the bench floor).
    pub const CAMPAIGN_SHINGLES: &str = "campaign.shingles";
    /// Counter: reviews folded through the text-sketch rebuild kernel
    /// (the numerator of the bench `reviews/s` floor; the matching wall
    /// time lives under [`SPAN_TEXT_REBUILD`]).
    pub const TEXT_REVIEWS: &str = "text.reviews";
}

/// Per-class counts of transport faults injected by a chaos run.
///
/// Filled in by the fault-injection layer (`racket-collect`'s
/// `FaultPlan` on `MemTransport`) and summed across all device lanes into
/// [`PipelineMetrics::faults`]. All zeros on a clean (fault-free) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames silently discarded in transit.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back and delivered after a later frame.
    pub reordered: u64,
    /// Frames cut off mid-stream.
    pub truncated: u64,
    /// Frames with one bit flipped.
    pub corrupted: u64,
    /// Connection resets surfaced to the sender.
    pub disconnected: u64,
    /// Frames stalled past the receiver's deadline (indefinitely delayed;
    /// indistinguishable from loss within one retry deadline).
    pub stalled: u64,
}

impl FaultCounters {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.truncated
            + self.corrupted
            + self.disconnected
            + self.stalled
    }

    /// Fold another counter set into this one (lane aggregation).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.truncated += other.truncated;
        self.corrupted += other.corrupted;
        self.disconnected += other.disconnected;
        self.stalled += other.stalled;
    }

    /// Add these counts to the `fault.*` counters of a registry.
    pub fn record_to(&self, registry: &Registry) {
        registry.add(keys::FAULT_DROPPED, self.dropped);
        registry.add(keys::FAULT_DUPLICATED, self.duplicated);
        registry.add(keys::FAULT_REORDERED, self.reordered);
        registry.add(keys::FAULT_TRUNCATED, self.truncated);
        registry.add(keys::FAULT_CORRUPTED, self.corrupted);
        registry.add(keys::FAULT_DISCONNECTED, self.disconnected);
        registry.add(keys::FAULT_STALLED, self.stalled);
    }

    /// Read the `fault.*` counters back out of a snapshot.
    pub fn from_snapshot(snapshot: &RegistrySnapshot) -> FaultCounters {
        FaultCounters {
            dropped: snapshot.counter(keys::FAULT_DROPPED),
            duplicated: snapshot.counter(keys::FAULT_DUPLICATED),
            reordered: snapshot.counter(keys::FAULT_REORDERED),
            truncated: snapshot.counter(keys::FAULT_TRUNCATED),
            corrupted: snapshot.counter(keys::FAULT_CORRUPTED),
            disconnected: snapshot.counter(keys::FAULT_DISCONNECTED),
            stalled: snapshot.counter(keys::FAULT_STALLED),
        }
    }
}

/// Wall-clock and throughput statistics for one end-to-end study run.
///
/// All counts are thread-count independent (the pipeline's determinism
/// contract); only the `*_secs` fields vary with `threads`. The fault,
/// retry and dedup counters are the observability surface of the chaos
/// subsystem: they vary with the configured [`FaultCounters`] fault plan
/// but — by the idempotency contract — the study's *data* output does not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Worker threads the parallel stages ran with.
    pub threads: usize,
    /// Wall time of fleet generation (history simulation), in seconds.
    pub fleet_gen_secs: f64,
    /// Wall time of the monitored-window simulation + snapshot collection
    /// loop, in seconds.
    pub simulate_secs: f64,
    /// Wall time of database assembly (coalescing, crawl joins, feature
    /// inputs), in seconds.
    pub assemble_secs: f64,
    /// Snapshots ingested by the collection server.
    pub snapshots_ingested: u64,
    /// Compressed bytes uploaded over the wire path, including
    /// retransmissions (0 on the direct, in-process path, which skips
    /// framing and compression).
    pub bytes_compressed: u64,
    /// Install records held per ingest shard at the end of the run
    /// (empty when the run used the unsharded wire path only).
    pub shard_occupancy: Vec<usize>,
    /// Transport faults injected by the configured fault plan.
    pub faults: FaultCounters,
    /// Protocol exchanges attempted over the wire path (first tries and
    /// retries combined).
    pub upload_attempts: u64,
    /// Exchanges that were retried after a timeout, decode error or
    /// connection reset.
    pub upload_retries: u64,
    /// Connection resets followed by a reconnect-and-resume.
    pub reconnects: u64,
    /// Simulated backoff time accumulated across all retries, in
    /// milliseconds (the study driver never sleeps; delays are virtual).
    pub backoff_ms: u64,
    /// Exchanges abandoned after the retry budget was exhausted (must be 0
    /// for the recovery contract to hold).
    pub exchanges_exhausted: u64,
    /// Duplicate or stale frames discarded by the sequence-checked codec.
    pub stale_frames: u64,
    /// Replayed upload files deduplicated (re-acknowledged without
    /// re-ingesting) by the server's idempotent ingest.
    pub dup_files_deduped: u64,
    /// Uploads load-shed (rejected with a 429) by the async plane's
    /// admission control because a per-connection queue was full. Zero on
    /// the synchronous paths; timing-dependent on the async path, so —
    /// like every other field here — never part of an output fingerprint.
    pub load_sheds: u64,
    /// Deepest per-connection upload queue any async worker observed
    /// (high-water mark; 0 on the synchronous paths).
    pub queue_depth_peak: u64,
}

impl PipelineMetrics {
    /// Derive the report from a frozen registry snapshot — the only way
    /// the study driver builds one of these. Counts come from the
    /// canonical [`keys`] counters, stage wall times from the top-level
    /// `span.*` histograms, shard occupancy from the zero-padded
    /// `ingest.shard_occupancy.*` gauges (gauge-name order is shard
    /// order).
    pub fn from_snapshot(snapshot: &RegistrySnapshot) -> PipelineMetrics {
        let shard_occupancy = snapshot
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with(keys::SHARD_OCCUPANCY_PREFIX))
            .map(|(_, &v)| v as usize)
            .collect();
        PipelineMetrics {
            threads: snapshot.gauge(keys::THREADS) as usize,
            fleet_gen_secs: snapshot.span_secs(keys::SPAN_FLEET_GEN),
            simulate_secs: snapshot.span_secs(keys::SPAN_SIMULATE),
            assemble_secs: snapshot.span_secs(keys::SPAN_ASSEMBLE),
            snapshots_ingested: snapshot.counter(keys::SNAPSHOTS_INGESTED),
            bytes_compressed: snapshot.counter(keys::BYTES_COMPRESSED),
            shard_occupancy,
            faults: FaultCounters::from_snapshot(snapshot),
            upload_attempts: snapshot.counter(keys::UPLOAD_ATTEMPTS),
            upload_retries: snapshot.counter(keys::UPLOAD_RETRIES),
            reconnects: snapshot.counter(keys::RECONNECTS),
            backoff_ms: snapshot.counter(keys::BACKOFF_MS),
            exchanges_exhausted: snapshot.counter(keys::EXCHANGES_EXHAUSTED),
            stale_frames: snapshot.counter(keys::STALE_FRAMES),
            dup_files_deduped: snapshot.counter(keys::DUP_FILES),
            load_sheds: snapshot.counter(keys::SERVER_LOAD_SHED),
            queue_depth_peak: snapshot.gauge(keys::SERVER_QUEUE_DEPTH_PEAK),
        }
    }

    /// Total pipeline wall time across the three stages, in seconds.
    pub fn total_secs(&self) -> f64 {
        self.fleet_gen_secs + self.simulate_secs + self.assemble_secs
    }

    /// Ingestion throughput over the simulate stage, in snapshots/second.
    pub fn snapshots_per_sec(&self) -> f64 {
        if self.simulate_secs > 0.0 {
            self.snapshots_ingested as f64 / self.simulate_secs
        } else {
            0.0
        }
    }

    /// Multi-line human-readable report (what `study_summary` prints).
    pub fn report(&self) -> String {
        let occupancy = if self.shard_occupancy.is_empty() {
            "unsharded (wire path)".to_string()
        } else {
            let min = self.shard_occupancy.iter().min().copied().unwrap_or(0);
            let max = self.shard_occupancy.iter().max().copied().unwrap_or(0);
            format!(
                "{} shards, {min}..{max} records/shard",
                self.shard_occupancy.len()
            )
        };
        let f = &self.faults;
        format!(
            "threads: {}\n\
             fleet generation: {:.2}s\n\
             simulate+collect: {:.2}s ({:.0} snapshots/s)\n\
             assembly:         {:.2}s\n\
             total:            {:.2}s\n\
             snapshots ingested: {}\n\
             bytes compressed:   {}\n\
             shard occupancy:    {occupancy}\n\
             faults injected:    {} (drop {}, dup {}, reorder {}, truncate {}, \
             corrupt {}, disconnect {}, stall {})\n\
             upload exchanges:   {} attempts, {} retries, {} reconnects, \
             {} ms backoff (simulated), {} exhausted\n\
             dedup:              {} stale frames discarded, {} replayed files \
             re-acked\n\
             admission:          {} uploads shed, queue depth peak {}",
            self.threads,
            self.fleet_gen_secs,
            self.simulate_secs,
            self.snapshots_per_sec(),
            self.assemble_secs,
            self.total_secs(),
            self.snapshots_ingested,
            self.bytes_compressed,
            f.total(),
            f.dropped,
            f.duplicated,
            f.reordered,
            f.truncated,
            f.corrupted,
            f.disconnected,
            f.stalled,
            self.upload_attempts,
            self.upload_retries,
            self.reconnects,
            self.backoff_ms,
            self.exchanges_exhausted,
            self.stale_frames,
            self.dup_files_deduped,
            self.load_sheds,
            self.queue_depth_peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_throughput() {
        let m = PipelineMetrics {
            threads: 4,
            fleet_gen_secs: 1.0,
            simulate_secs: 2.0,
            assemble_secs: 0.5,
            snapshots_ingested: 10_000,
            bytes_compressed: 0,
            shard_occupancy: vec![10, 12, 9, 11],
            ..PipelineMetrics::default()
        };
        assert!((m.total_secs() - 3.5).abs() < 1e-12);
        assert!((m.snapshots_per_sec() - 5_000.0).abs() < 1e-9);
        let report = m.report();
        assert!(report.contains("4 shards"));
        assert!(report.contains("threads: 4"));
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = PipelineMetrics::default();
        assert_eq!(m.snapshots_per_sec(), 0.0);
        assert!(m.report().contains("unsharded"));
    }

    #[test]
    fn fault_counters_total_and_merge() {
        let mut a = FaultCounters {
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            truncated: 4,
            corrupted: 5,
            disconnected: 6,
            stalled: 7,
        };
        assert_eq!(a.total(), 28);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 56);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.stalled, 14);
    }

    #[test]
    fn from_snapshot_projects_canonical_keys() {
        let reg = Registry::new();
        reg.gauge_set(keys::THREADS, 4);
        reg.add(keys::SNAPSHOTS_INGESTED, 1_000);
        reg.add(keys::BYTES_COMPRESSED, 2_048);
        reg.add(keys::UPLOAD_ATTEMPTS, 12);
        reg.add(keys::UPLOAD_RETRIES, 2);
        reg.add(keys::RECONNECTS, 1);
        reg.add(keys::BACKOFF_MS, 80);
        reg.add(keys::STALE_FRAMES, 3);
        reg.add(keys::DUP_FILES, 1);
        reg.gauge_set(&format!("{}0000", keys::SHARD_OCCUPANCY_PREFIX), 10);
        reg.gauge_set(&format!("{}0001", keys::SHARD_OCCUPANCY_PREFIX), 12);
        FaultCounters {
            dropped: 5,
            stalled: 2,
            ..FaultCounters::default()
        }
        .record_to(&reg);
        {
            let _s = reg.span(keys::SPAN_SIMULATE);
        }

        let m = PipelineMetrics::from_snapshot(&reg.snapshot());
        assert_eq!(m.threads, 4);
        assert_eq!(m.snapshots_ingested, 1_000);
        assert_eq!(m.bytes_compressed, 2_048);
        assert_eq!(m.shard_occupancy, vec![10, 12]);
        assert_eq!(m.faults.dropped, 5);
        assert_eq!(m.faults.stalled, 2);
        assert_eq!(m.faults.total(), 7);
        assert_eq!(m.upload_attempts, 12);
        assert_eq!(m.upload_retries, 2);
        assert_eq!(m.reconnects, 1);
        assert_eq!(m.backoff_ms, 80);
        assert_eq!(m.exchanges_exhausted, 0);
        assert_eq!(m.stale_frames, 3);
        assert_eq!(m.dup_files_deduped, 1);
        assert!(m.simulate_secs >= 0.0);
        assert_eq!(m.fleet_gen_secs, 0.0);
    }

    #[test]
    fn fault_counters_round_trip_through_registry() {
        let reg = Registry::new();
        let f = FaultCounters {
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            truncated: 4,
            corrupted: 5,
            disconnected: 6,
            stalled: 7,
        };
        f.record_to(&reg);
        f.record_to(&reg); // counters add — recording is commutative
        let back = FaultCounters::from_snapshot(&reg.snapshot());
        assert_eq!(back.total(), 2 * f.total());
        assert_eq!(back.corrupted, 10);
    }

    #[test]
    fn report_includes_fault_and_retry_counters() {
        let m = PipelineMetrics {
            faults: FaultCounters {
                dropped: 3,
                ..FaultCounters::default()
            },
            upload_attempts: 10,
            upload_retries: 4,
            reconnects: 1,
            stale_frames: 2,
            dup_files_deduped: 1,
            ..PipelineMetrics::default()
        };
        let report = m.report();
        assert!(report.contains("faults injected:    3 (drop 3,"));
        assert!(report.contains("10 attempts, 4 retries, 1 reconnects"));
        assert!(report.contains("2 stale frames discarded, 1 replayed files"));
    }
}
