//! Pipeline throughput metrics.
//!
//! The paper's study ingested 58.3M snapshots from 803 devices (§5); the
//! reproduction's simulate→collect→analyze pipeline reports its own
//! throughput through [`PipelineMetrics`], filled in by the study driver
//! and printed by the `study_summary` experiment binary. The struct is the
//! observable half of the parallelism contract documented in
//! `ARCHITECTURE.md`: stage wall times shrink with worker threads while
//! every count stays bit-identical.

/// Per-class counts of transport faults injected by a chaos run.
///
/// Filled in by the fault-injection layer (`racket-collect`'s
/// `FaultPlan` on `MemTransport`) and summed across all device lanes into
/// [`PipelineMetrics::faults`]. All zeros on a clean (fault-free) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames silently discarded in transit.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back and delivered after a later frame.
    pub reordered: u64,
    /// Frames cut off mid-stream.
    pub truncated: u64,
    /// Frames with one bit flipped.
    pub corrupted: u64,
    /// Connection resets surfaced to the sender.
    pub disconnected: u64,
    /// Frames stalled past the receiver's deadline (indefinitely delayed;
    /// indistinguishable from loss within one retry deadline).
    pub stalled: u64,
}

impl FaultCounters {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.truncated
            + self.corrupted
            + self.disconnected
            + self.stalled
    }

    /// Fold another counter set into this one (lane aggregation).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.truncated += other.truncated;
        self.corrupted += other.corrupted;
        self.disconnected += other.disconnected;
        self.stalled += other.stalled;
    }
}

/// Wall-clock and throughput statistics for one end-to-end study run.
///
/// All counts are thread-count independent (the pipeline's determinism
/// contract); only the `*_secs` fields vary with `threads`. The fault,
/// retry and dedup counters are the observability surface of the chaos
/// subsystem: they vary with the configured [`FaultCounters`] fault plan
/// but — by the idempotency contract — the study's *data* output does not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Worker threads the parallel stages ran with.
    pub threads: usize,
    /// Wall time of fleet generation (history simulation), in seconds.
    pub fleet_gen_secs: f64,
    /// Wall time of the monitored-window simulation + snapshot collection
    /// loop, in seconds.
    pub simulate_secs: f64,
    /// Wall time of database assembly (coalescing, crawl joins, feature
    /// inputs), in seconds.
    pub assemble_secs: f64,
    /// Snapshots ingested by the collection server.
    pub snapshots_ingested: u64,
    /// Compressed bytes uploaded over the wire path, including
    /// retransmissions (0 on the direct, in-process path, which skips
    /// framing and compression).
    pub bytes_compressed: u64,
    /// Install records held per ingest shard at the end of the run
    /// (empty when the run used the unsharded wire path only).
    pub shard_occupancy: Vec<usize>,
    /// Transport faults injected by the configured fault plan.
    pub faults: FaultCounters,
    /// Protocol exchanges attempted over the wire path (first tries and
    /// retries combined).
    pub upload_attempts: u64,
    /// Exchanges that were retried after a timeout, decode error or
    /// connection reset.
    pub upload_retries: u64,
    /// Connection resets followed by a reconnect-and-resume.
    pub reconnects: u64,
    /// Simulated backoff time accumulated across all retries, in
    /// milliseconds (the study driver never sleeps; delays are virtual).
    pub backoff_ms: u64,
    /// Exchanges abandoned after the retry budget was exhausted (must be 0
    /// for the recovery contract to hold).
    pub exchanges_exhausted: u64,
    /// Duplicate or stale frames discarded by the sequence-checked codec.
    pub stale_frames: u64,
    /// Replayed upload files deduplicated (re-acknowledged without
    /// re-ingesting) by the server's idempotent ingest.
    pub dup_files_deduped: u64,
}

impl PipelineMetrics {
    /// Total pipeline wall time across the three stages, in seconds.
    pub fn total_secs(&self) -> f64 {
        self.fleet_gen_secs + self.simulate_secs + self.assemble_secs
    }

    /// Ingestion throughput over the simulate stage, in snapshots/second.
    pub fn snapshots_per_sec(&self) -> f64 {
        if self.simulate_secs > 0.0 {
            self.snapshots_ingested as f64 / self.simulate_secs
        } else {
            0.0
        }
    }

    /// Multi-line human-readable report (what `study_summary` prints).
    pub fn report(&self) -> String {
        let occupancy = if self.shard_occupancy.is_empty() {
            "unsharded (wire path)".to_string()
        } else {
            let min = self.shard_occupancy.iter().min().copied().unwrap_or(0);
            let max = self.shard_occupancy.iter().max().copied().unwrap_or(0);
            format!(
                "{} shards, {min}..{max} records/shard",
                self.shard_occupancy.len()
            )
        };
        let f = &self.faults;
        format!(
            "threads: {}\n\
             fleet generation: {:.2}s\n\
             simulate+collect: {:.2}s ({:.0} snapshots/s)\n\
             assembly:         {:.2}s\n\
             total:            {:.2}s\n\
             snapshots ingested: {}\n\
             bytes compressed:   {}\n\
             shard occupancy:    {occupancy}\n\
             faults injected:    {} (drop {}, dup {}, reorder {}, truncate {}, \
             corrupt {}, disconnect {}, stall {})\n\
             upload exchanges:   {} attempts, {} retries, {} reconnects, \
             {} ms backoff (simulated), {} exhausted\n\
             dedup:              {} stale frames discarded, {} replayed files \
             re-acked",
            self.threads,
            self.fleet_gen_secs,
            self.simulate_secs,
            self.snapshots_per_sec(),
            self.assemble_secs,
            self.total_secs(),
            self.snapshots_ingested,
            self.bytes_compressed,
            f.total(),
            f.dropped,
            f.duplicated,
            f.reordered,
            f.truncated,
            f.corrupted,
            f.disconnected,
            f.stalled,
            self.upload_attempts,
            self.upload_retries,
            self.reconnects,
            self.backoff_ms,
            self.exchanges_exhausted,
            self.stale_frames,
            self.dup_files_deduped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_throughput() {
        let m = PipelineMetrics {
            threads: 4,
            fleet_gen_secs: 1.0,
            simulate_secs: 2.0,
            assemble_secs: 0.5,
            snapshots_ingested: 10_000,
            bytes_compressed: 0,
            shard_occupancy: vec![10, 12, 9, 11],
            ..PipelineMetrics::default()
        };
        assert!((m.total_secs() - 3.5).abs() < 1e-12);
        assert!((m.snapshots_per_sec() - 5_000.0).abs() < 1e-9);
        let report = m.report();
        assert!(report.contains("4 shards"));
        assert!(report.contains("threads: 4"));
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = PipelineMetrics::default();
        assert_eq!(m.snapshots_per_sec(), 0.0);
        assert!(m.report().contains("unsharded"));
    }

    #[test]
    fn fault_counters_total_and_merge() {
        let mut a = FaultCounters {
            dropped: 1,
            duplicated: 2,
            reordered: 3,
            truncated: 4,
            corrupted: 5,
            disconnected: 6,
            stalled: 7,
        };
        assert_eq!(a.total(), 28);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 56);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.stalled, 14);
    }

    #[test]
    fn report_includes_fault_and_retry_counters() {
        let m = PipelineMetrics {
            faults: FaultCounters {
                dropped: 3,
                ..FaultCounters::default()
            },
            upload_attempts: 10,
            upload_retries: 4,
            reconnects: 1,
            stale_frames: 2,
            dup_files_deduped: 1,
            ..PipelineMetrics::default()
        };
        let report = m.report();
        assert!(report.contains("faults injected:    3 (drop 3,"));
        assert!(report.contains("10 attempts, 4 retries, 1 reconnects"));
        assert!(report.contains("2 stale frames discarded, 1 replayed files"));
    }
}
