//! Apps: catalog metadata and per-device installed state.
//!
//! The study observed 12,341 distinct apps across participant devices (§5),
//! collected each installed app's install time, last-update time, required
//! permissions and the MD5 hash of its apk (§3), and joined apps against
//! Play-Store reviews and VirusTotal verdicts.

use crate::permission::{Permission, PermissionProfile};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an app (a Play-Store package) within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

impl AppId {
    /// The raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app-{}", self.0)
    }
}

/// MD5 digest of an apk file, as collected by the fast snapshot module (§3).
///
/// Different builds (including *modded* third-party-store variants, §6.3) of
/// the same package have different hashes; the VirusTotal analysis of §6.4
/// keys on the hash, not the package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApkHash(pub [u8; 16]);

impl ApkHash {
    /// The digest bytes.
    pub const fn bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Render as lowercase hex, the form VirusTotal reports use.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }
}

impl fmt::Display for ApkHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Coarse Play-Store category of an app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are category names
pub enum AppCategory {
    Social,
    Communication,
    Game,
    Tools,
    Productivity,
    Finance,
    Shopping,
    Entertainment,
    Music,
    Photography,
    Travel,
    News,
    Education,
    Health,
    Antivirus,
    System,
}

impl AppCategory {
    /// Whether apps in this category ship with the device image.
    pub fn is_preinstalled(self) -> bool {
        matches!(self, AppCategory::System)
    }
}

/// Catalog-level metadata of an app (the store's view; per-device state
/// lives in [`InstalledApp`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMetadata {
    /// The app's identity.
    pub id: AppId,
    /// Reverse-DNS package name.
    pub package: String,
    /// Store category.
    pub category: AppCategory,
    /// Permissions declared in the manifest.
    pub permissions: Vec<Permission>,
    /// Canonical apk hash of the current store build.
    pub apk_hash: ApkHash,
    /// Whether the app is distributed through Google Play at all; §6.3
    /// found participant devices with apps from third-party stores.
    pub on_play_store: bool,
    /// Whether this build is a *modded* re-signed variant (§6.3 footnote).
    pub modded: bool,
}

impl AppMetadata {
    /// Number of dangerous permissions in the manifest (Figure 11 y-axis).
    pub fn dangerous_permission_count(&self) -> usize {
        self.permissions.iter().filter(|p| p.is_dangerous()).count()
    }
}

/// Per-device state of one installed app, the unit the fast snapshot
/// collector reports deltas about (§3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstalledApp {
    /// Which app is installed.
    pub app: AppId,
    /// Android's *last* install time — the API retains only the most recent
    /// install, which is why §6.3 sees negative install-to-review deltas for
    /// re-installed apps.
    pub install_time: SimTime,
    /// Last package update time.
    pub last_update: SimTime,
    /// Permission request/grant/deny state on this device.
    pub permissions: PermissionProfile,
    /// Hash of the installed apk build.
    pub apk_hash: ApkHash,
    /// Whether the app is in the Android *stopped* state: freshly installed
    /// and never opened, or force-stopped by the user (§3, §6.3).
    pub stopped: bool,
    /// Whether the package shipped with the device image.
    pub preinstalled: bool,
}

impl InstalledApp {
    /// A freshly installed app: stopped until first opened, permissions per
    /// the supplied profile, last update equal to the install time.
    pub fn fresh(
        app: AppId,
        install_time: SimTime,
        permissions: PermissionProfile,
        apk_hash: ApkHash,
    ) -> Self {
        InstalledApp {
            app,
            install_time,
            last_update: install_time,
            permissions,
            apk_hash,
            stopped: true,
            preinstalled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(perms: Vec<Permission>) -> AppMetadata {
        AppMetadata {
            id: AppId(1),
            package: "com.example.app".into(),
            category: AppCategory::Tools,
            permissions: perms,
            apk_hash: ApkHash([0xab; 16]),
            on_play_store: true,
            modded: false,
        }
    }

    #[test]
    fn apk_hash_hex() {
        let h = ApkHash([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        assert_eq!(h.to_hex(), "00112233445566778899aabbccddeeff");
        assert_eq!(h.to_string(), h.to_hex());
    }

    #[test]
    fn dangerous_permission_count() {
        let m = meta(vec![
            Permission::Internet,
            Permission::Camera,
            Permission::ReadSms,
        ]);
        assert_eq!(m.dangerous_permission_count(), 2);
    }

    #[test]
    fn fresh_install_is_stopped() {
        let app = InstalledApp::fresh(
            AppId(3),
            SimTime::from_days(1),
            PermissionProfile::default(),
            ApkHash([1; 16]),
        );
        assert!(
            app.stopped,
            "Android 3.1+ places fresh installs in stopped state"
        );
        assert_eq!(app.install_time, app.last_update);
        assert!(!app.preinstalled);
    }

    #[test]
    fn preinstalled_category() {
        assert!(AppCategory::System.is_preinstalled());
        assert!(!AppCategory::Game.is_preinstalled());
    }
}
