//! Property tests for the statistical toolbox.

use proptest::prelude::*;
use racket_stats::special::{chi2_cdf, f_cdf, norm_cdf, norm_quantile};
use racket_stats::{anova_oneway, kruskal_wallis, ks_2samp, mann_whitney_u, quantile, Summary};

proptest! {
    #[test]
    fn ks_statistic_and_pvalue_bounded(
        a in proptest::collection::vec(-1e3f64..1e3, 1..200),
        b in proptest::collection::vec(-1e3f64..1e3, 1..200),
    ) {
        let out = ks_2samp(&a, &b);
        prop_assert!((0.0..=1.0).contains(&out.statistic));
        prop_assert!((0.0..=1.0).contains(&out.p_value));
    }

    #[test]
    fn ks_is_symmetric(
        a in proptest::collection::vec(-1e3f64..1e3, 1..100),
        b in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let ab = ks_2samp(&a, &b);
        let ba = ks_2samp(&b, &a);
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_never_significant(
        a in proptest::collection::vec(-1e3f64..1e3, 3..100),
    ) {
        let ks = ks_2samp(&a, &a);
        prop_assert_eq!(ks.statistic, 0.0);
        prop_assert!(ks.p_value > 0.99);
        let kw = kruskal_wallis(&[&a, &a]);
        prop_assert!(kw.p_value > 0.5, "KW p = {}", kw.p_value);
    }

    #[test]
    fn shifting_one_sample_only_raises_evidence(
        a in proptest::collection::vec(0f64..10.0, 10..60),
    ) {
        // A large location shift must be at least as significant as none.
        let shifted: Vec<f64> = a.iter().map(|v| v + 1000.0).collect();
        let far = mann_whitney_u(&a, &shifted);
        prop_assert!(far.p_value < 0.01, "gross shift must be detected, p = {}", far.p_value);
    }

    #[test]
    fn anova_pvalue_bounded(
        a in proptest::collection::vec(-1e3f64..1e3, 2..60),
        b in proptest::collection::vec(-1e3f64..1e3, 2..60),
    ) {
        let out = anova_oneway(&[&a, &b]);
        prop_assert!((0.0..=1.0).contains(&out.p_value));
        prop_assert!(out.statistic >= 0.0);
    }

    #[test]
    fn cdfs_are_monotone_and_bounded(x in -50f64..50.0, y in -50f64..50.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&norm_cdf(x)));
        if lo > 0.0 {
            prop_assert!(chi2_cdf(lo, 3.0) <= chi2_cdf(hi, 3.0) + 1e-12);
            prop_assert!(f_cdf(lo, 3.0, 7.0) <= f_cdf(hi, 3.0, 7.0) + 1e-12);
        }
    }

    #[test]
    fn norm_quantile_round_trips(p in 0.0001f64..0.9999) {
        let x = norm_quantile(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn quantiles_are_monotone(
        data in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0f64..1.0,
        q2 in 0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&data, lo).unwrap();
        let b = quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let s = Summary::of(&data).unwrap();
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }

    #[test]
    fn summary_bounds_hold(data in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.sd >= 0.0);
    }

    // Rank statistics depend only on the ordering of the pooled sample, so
    // any strictly increasing transform applied to BOTH samples must leave
    // them exactly unchanged. The transforms are chosen to be exact in
    // f64 — ×8 is a power-of-two exponent bump and cubing integer-grid
    // values stays on the integer grid — so no rounding can create or
    // destroy ties and perturb the tie corrections.
    #[test]
    fn rank_sum_invariant_under_scaling(
        a in proptest::collection::vec(-512f64..512.0, 3..60),
        b in proptest::collection::vec(-512f64..512.0, 3..60),
    ) {
        let base = mann_whitney_u(&a, &b);
        let sa: Vec<f64> = a.iter().map(|v| v * 8.0).collect();
        let sb: Vec<f64> = b.iter().map(|v| v * 8.0).collect();
        let scaled = mann_whitney_u(&sa, &sb);
        prop_assert!((base.statistic - scaled.statistic).abs() < 1e-9);
        prop_assert!((base.p_value - scaled.p_value).abs() < 1e-9);
    }

    #[test]
    fn rank_sum_invariant_under_cubing(
        a in proptest::collection::vec(-100i32..100, 3..60),
        b in proptest::collection::vec(-100i32..100, 3..60),
    ) {
        // Integer grid in, integer grid out: x³ is strictly increasing
        // and exact for |x| ≤ 100, preserving every tie structure.
        let af: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let bf: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        let base = mann_whitney_u(&af, &bf);
        let ca: Vec<f64> = af.iter().map(|v| v * v * v).collect();
        let cb: Vec<f64> = bf.iter().map(|v| v * v * v).collect();
        let cubed = mann_whitney_u(&ca, &cb);
        prop_assert!((base.statistic - cubed.statistic).abs() < 1e-9);
        prop_assert!((base.p_value - cubed.p_value).abs() < 1e-9);
    }

    #[test]
    fn kruskal_wallis_degenerates_on_identical_groups(
        a in proptest::collection::vec(-1e3f64..1e3, 3..60),
        k in 2usize..5,
    ) {
        // k copies of the same sample: every group has the same rank
        // distribution, so H ≈ 0 and the test must not reject.
        let groups: Vec<&[f64]> = (0..k).map(|_| a.as_slice()).collect();
        let out = kruskal_wallis(&groups);
        prop_assert!(out.statistic.abs() < 1e-6, "H = {}", out.statistic);
        prop_assert!(out.p_value > 0.5, "p = {}", out.p_value);
        prop_assert!(!out.significant());
    }
}
