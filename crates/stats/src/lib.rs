//! Statistical machinery for the RacketStore measurement analyses.
//!
//! §6 of the paper compares feature distributions between worker-controlled
//! and regular devices using the two-sample Kolmogorov–Smirnov test,
//! parametric one-way ANOVA and non-parametric ANOVA (Kruskal–Wallis),
//! choosing the latter because Shapiro–Wilk rejected normality and
//! Fligner–Killeen rejected homoscedasticity for every feature.
//!
//! This crate implements those five tests from scratch, together with the
//! special functions they need (log-gamma, regularized incomplete gamma and
//! beta, the error function, the normal quantile function and the
//! Kolmogorov distribution), plus descriptive statistics and the Jaccard
//! similarity used by the Appendix A snapshot fingerprinting.
//!
//! All tests return a [`TestOutcome`] carrying the test statistic and an
//! asymptotic p-value, matching what R/scipy would report on the same data
//! (unit tests pin reference values).

#![deny(missing_docs)]

pub mod descriptive;
pub mod rank;
pub mod special;
pub mod tests;

pub use descriptive::{quantile, Summary};
pub use rank::{average_ranks, tie_correction};
pub use tests::{
    anova_oneway, fligner_killeen, jaccard, kruskal_wallis, ks_2samp, mann_whitney_u, shapiro_wilk,
    TestOutcome,
};

/// Conventional significance level used throughout the paper (p < 0.05).
pub const ALPHA: f64 = 0.05;
