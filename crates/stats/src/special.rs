//! Special functions underlying the hypothesis tests.
//!
//! Implementations follow standard numerical recipes: Lanczos approximation
//! for `ln Γ`, series / continued-fraction evaluation for the regularized
//! incomplete gamma and beta functions, Abramowitz–Stegun rational
//! approximation for `erf`, Acklam's rational approximation for the normal
//! quantile, and the alternating-series form of the Kolmogorov distribution.
//! Accuracies are pinned against scipy in the unit tests (absolute error
//! below 1e-8 for the CDFs, 1e-6 for the quantile function).

/// Machine-precision floor used to terminate series expansions.
const EPS: f64 = 1e-15;
/// A tiny number standing in for zero in continued fractions (Lentz).
const FPMIN: f64 = 1e-300;

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Valid for `x > 0`; absolute error below 1e-13 over the tested range.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; the chi-square CDF with `k` degrees of
/// freedom is `P(k/2, x/2)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of `P(a, x)`, best for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (modified Lentz) evaluation of `Q(a, x)`, best for
/// `x >= a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// The F-distribution CDF with `(d1, d2)` degrees of freedom at `f` is
/// `I_{d1 f / (d1 f + d2)}(d1/2, d2/2)`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain: a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc domain: 0 <= x <= 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_contfrac(a, b, x) / a
    } else {
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a); the continued fraction for
        // the mirrored arguments converges fast on this side.
        1.0 - front * beta_contfrac(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction (modified Lentz) core of the incomplete beta.
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, via the regularized incomplete gamma (`erf(x) =
/// P(1/2, x²)` for `x >= 0`, odd extension otherwise).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `1 - erf(x)` with better tail accuracy.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)`, Acklam's approximation
/// refined by one Halley step (absolute error < 1e-9).
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile domain: 0 < p < 1, got {p}"
    );
    // Coefficients for Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the true CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-square CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_cdf needs df > 0");
    if x <= 0.0 {
        0.0
    } else {
        gamma_p(df / 2.0, x / 2.0)
    }
}

/// Upper-tail probability of the chi-square distribution.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf needs df > 0");
    if x <= 0.0 {
        1.0
    } else {
        gamma_q(df / 2.0, x / 2.0)
    }
}

/// F-distribution CDF with `(d1, d2)` degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_cdf needs positive dfs");
    if f <= 0.0 {
        0.0
    } else {
        beta_inc(d1 / 2.0, d2 / 2.0, d1 * f / (d1 * f + d2))
    }
}

/// Upper-tail probability of the F distribution (the ANOVA p-value).
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    1.0 - f_cdf(f, d1, d2)
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`.
///
/// This is the asymptotic p-value of the two-sample KS statistic after the
/// effective-sample-size scaling.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 0.2 {
        // The series converges slowly here but the value is within 1e-15 of 1.
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Verified against C lgamma(10.3) = 13.48203678613836.
        close(ln_gamma(10.3), 13.482_036_786_138_36, 1e-10);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn chi2_reference_values() {
        // scipy.stats.chi2.cdf(3.84, 1) = 0.9499565...
        close(chi2_cdf(3.84, 1.0), 0.949_956_5, 1e-6);
        // scipy.stats.chi2.sf(5.991, 2) = 0.05000...
        close(chi2_sf(5.991, 2.0), 0.050_011, 1e-5);
        // scipy.stats.chi2.cdf(10, 5) = 0.9247647538534878
        close(chi2_cdf(10.0, 5.0), 0.924_764_753_853_487_8, 1e-10);
    }

    #[test]
    fn beta_inc_reference_values() {
        // scipy.special.betainc(2, 3, 0.4) = 0.5248
        close(beta_inc(2.0, 3.0, 0.4), 0.5248, 1e-10);
        // scipy.special.betainc(0.5, 0.5, 0.3) = 0.3690101196
        close(beta_inc(0.5, 0.5, 0.3), 0.369_010_119_565_545, 1e-9);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(1.5, 2.5, 0.2), (4.0, 1.0, 0.7), (3.0, 3.0, 0.5)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
        assert_eq!(beta_inc(2.0, 2.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 2.0, 1.0), 1.0);
    }

    #[test]
    fn f_distribution_reference_values() {
        // Verified by numerical integration of the F(3,20) density.
        close(f_sf(4.0, 3.0, 20.0), 0.022_077, 1e-5);
        // scipy.stats.f.cdf(1.0, 5, 5) = 0.5 by symmetry.
        close(f_cdf(1.0, 5.0, 5.0), 0.5, 1e-10);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-10);
        close(erfc(2.0), 0.004_677_734_981_063_133, 1e-12);
        close(erf(0.5) + erfc(0.5), 1.0, 1e-12);
    }

    #[test]
    fn norm_cdf_reference_values() {
        close(norm_cdf(0.0), 0.5, 1e-12);
        close(norm_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        close(norm_cdf(-1.644_853_626_951_472), 0.05, 1e-9);
    }

    #[test]
    fn norm_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            close(norm_cdf(norm_quantile(p)), p, 1e-9);
        }
        close(norm_quantile(0.975), 1.959_963_984_540_054, 1e-8);
    }

    #[test]
    fn kolmogorov_reference_values() {
        // scipy.special.kolmogorov(1.0) = 0.26999967167735456
        close(kolmogorov_sf(1.0), 0.269_999_671_677_354_56, 1e-10);
        // 2(e^{-2·1.36²} − e^{-8·1.36²} + …) = 0.0494859 (hand-evaluated series).
        close(kolmogorov_sf(1.36), 0.049_486, 1e-5);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-20);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "norm_quantile domain")]
    fn norm_quantile_rejects_boundary() {
        norm_quantile(1.0);
    }
}
