//! Descriptive statistics.
//!
//! Every §6 measurement reports a mean, median (the paper's "M"), standard
//! deviation and maximum per cohort; [`Summary`] computes all of them in one
//! pass over a sample.

/// Five-number-style summary of a sample.
///
/// ```
/// use racket_stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.max, 100.0);
/// assert_eq!(s.paper_style(), "22.00 (M = 3.00, SD = 43.62, max = 100.00)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator), 0 for n < 2.
    pub sd: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            sd: var.sqrt(),
            median,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }

    /// Format like the paper: `mean (M = median, SD = sd, max = max)`.
    pub fn paper_style(&self) -> String {
        format!(
            "{:.2} (M = {:.2}, SD = {:.2}, max = {:.2})",
            self.mean, self.median, self.sd, self.max
        )
    }
}

/// Linear-interpolation quantile (type 7, R/numpy default) of a sample.
///
/// `q` must lie in `[0, 1]`. Returns `None` for an empty sample.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0,1], got {q}"
    );
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.sd - 1.581_138_83).abs() < 1e-6);
    }

    #[test]
    fn summary_even_median() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn paper_style_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.paper_style(), "2.00 (M = 2.00, SD = 1.00, max = 3.00)");
    }

    #[test]
    fn quantile_type7() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        // numpy.quantile([1,2,3,4], 0.25) = 1.75
        assert_eq!(quantile(&data, 0.25), Some(1.75));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile level must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }
}
