//! Rank utilities shared by the non-parametric tests.

/// Midranks (1-based average ranks) of a sample, ties receiving the average
/// of the positions they span — the convention used by Kruskal–Wallis,
/// Mann–Whitney and Fligner–Killeen.
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in sample"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Tie sizes in a sample: the multiplicities `t_i > 1` of repeated values.
pub fn tie_sizes(data: &[f64]) -> Vec<usize> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let mut ties = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        if j > i {
            ties.push(j - i + 1);
        }
        i = j + 1;
    }
    ties
}

/// Kruskal–Wallis tie-correction factor `1 − Σ(t³−t) / (N³−N)`.
///
/// Equals 1 with no ties; the H statistic is divided by this factor.
pub fn tie_correction(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let tie_sum: f64 = tie_sizes(data)
        .into_iter()
        .map(|t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    1.0 - tie_sum / (n * n * n - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties() {
        // [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(
            average_ranks(&[1.0, 2.0, 2.0, 3.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        // All equal -> everyone gets the middle rank.
        assert_eq!(average_ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn tie_sizes_found() {
        assert_eq!(tie_sizes(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]), vec![2, 3]);
        assert!(tie_sizes(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn tie_correction_values() {
        assert_eq!(tie_correction(&[1.0, 2.0, 3.0]), 1.0);
        // N=4 with one pair tied: 1 - (8-2)/(64-4) = 0.9
        assert!((tie_correction(&[1.0, 2.0, 2.0, 3.0]) - 0.9).abs() < 1e-12);
        assert_eq!(tie_correction(&[1.0]), 1.0);
    }

    #[test]
    fn ranks_sum_invariant() {
        // Ranks always sum to n(n+1)/2 regardless of ties.
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let n = data.len() as f64;
        let sum: f64 = average_ranks(&data).iter().sum();
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }
}
