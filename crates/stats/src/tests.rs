//! Hypothesis tests used in §6 of the paper.
//!
//! The paper's protocol: Shapiro–Wilk rejected normality and
//! Fligner–Killeen rejected equal variances for every feature, so
//! differences between workers and regular users are reported under all of
//! the Kolmogorov–Smirnov test, parametric ANOVA and non-parametric ANOVA
//! (Kruskal–Wallis). This module implements that entire battery.

use crate::rank::{average_ranks, tie_correction};
use crate::special::{chi2_sf, f_sf, kolmogorov_sf, norm_cdf, norm_quantile};

/// Result of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// The test statistic (D, F, H, U, W or X² depending on the test).
    pub statistic: f64,
    /// The (asymptotic) p-value.
    pub p_value: f64,
}

impl TestOutcome {
    /// Whether the outcome is significant at the paper's α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < crate::ALPHA
    }
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Returns the maximum distance `D` between the empirical CDFs and the
/// asymptotic two-sided p-value (Kolmogorov distribution with the
/// small-sample correction of Numerical Recipes / `ks.test`).
///
/// ```
/// use racket_stats::ks_2samp;
///
/// let regular = [1.0, 2.0, 2.0, 3.0, 4.0];
/// let worker = [20.0, 25.0, 31.0, 40.0, 55.0];
/// let out = ks_2samp(&regular, &worker);
/// assert_eq!(out.statistic, 1.0); // disjoint supports
/// assert!(out.significant());
/// ```
///
/// # Panics
/// If either sample is empty or contains NaN.
pub fn ks_2samp(x: &[f64], y: &[f64]) -> TestOutcome {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "ks_2samp requires non-empty samples"
    );
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    ys.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let xi = xs[i];
        let yj = ys[j];
        let v = xi.min(yj);
        while i < n && xs[i] <= v {
            i += 1;
        }
        while j < m && ys[j] <= v {
            j += 1;
        }
        let f1 = i as f64 / n as f64;
        let f2 = j as f64 / m as f64;
        d = d.max((f1 - f2).abs());
    }
    let en = ((n * m) as f64 / (n + m) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    TestOutcome {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// One-way (parametric) analysis of variance.
///
/// Returns the F statistic and the upper-tail F-distribution p-value.
///
/// # Panics
/// If fewer than two groups are given, any group is empty, or all
/// observations are identical (zero within-group variance with zero
/// between-group variance).
pub fn anova_oneway(groups: &[&[f64]]) -> TestOutcome {
    assert!(
        groups.len() >= 2,
        "anova_oneway requires at least two groups"
    );
    assert!(
        groups.iter().all(|g| !g.is_empty()),
        "anova_oneway: empty group"
    );
    let k = groups.len();
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    assert!(n_total > k, "anova_oneway requires n > k");
    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n_total as f64;
    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let mean = g.iter().sum::<f64>() / g.len() as f64;
        ss_between += g.len() as f64 * (mean - grand_mean).powi(2);
        ss_within += g.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
    }
    let df1 = (k - 1) as f64;
    let df2 = (n_total - k) as f64;
    let ms_between = ss_between / df1;
    let ms_within = ss_within / df2;
    if ms_within == 0.0 {
        // Degenerate: no within-group variation. Either groups differ
        // (F = ∞, p = 0) or everything is constant (no evidence, p = 1).
        return if ss_between > 0.0 {
            TestOutcome {
                statistic: f64::INFINITY,
                p_value: 0.0,
            }
        } else {
            TestOutcome {
                statistic: 0.0,
                p_value: 1.0,
            }
        };
    }
    let f = ms_between / ms_within;
    TestOutcome {
        statistic: f,
        p_value: f_sf(f, df1, df2),
    }
}

/// Kruskal–Wallis rank-sum test ("non-parametric ANOVA"), tie-corrected,
/// with the chi-square asymptotic p-value on `k − 1` degrees of freedom.
///
/// # Panics
/// If fewer than two groups are given or any group is empty.
pub fn kruskal_wallis(groups: &[&[f64]]) -> TestOutcome {
    assert!(
        groups.len() >= 2,
        "kruskal_wallis requires at least two groups"
    );
    assert!(
        groups.iter().all(|g| !g.is_empty()),
        "kruskal_wallis: empty group"
    );
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let n = pooled.len() as f64;
    let ranks = average_ranks(&pooled);
    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let ni = g.len();
        let rank_sum: f64 = ranks[offset..offset + ni].iter().sum();
        h += rank_sum * rank_sum / ni as f64;
        offset += ni;
    }
    h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);
    let correction = tie_correction(&pooled);
    if correction <= 0.0 {
        // All observations identical: no evidence of difference.
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    h /= correction;
    let df = (groups.len() - 1) as f64;
    TestOutcome {
        statistic: h,
        p_value: chi2_sf(h, df),
    }
}

/// Two-sided Mann–Whitney U test with normal approximation, tie correction
/// and continuity correction (matches `scipy.stats.mannwhitneyu` with
/// `method="asymptotic"`).
///
/// # Panics
/// If either sample is empty.
pub fn mann_whitney_u(x: &[f64], y: &[f64]) -> TestOutcome {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "mann_whitney_u requires non-empty samples"
    );
    let n1 = x.len() as f64;
    let n2 = y.len() as f64;
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let ranks = average_ranks(&pooled);
    let r1: f64 = ranks[..x.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let u2 = n1 * n2 - u1;
    let u = u1.min(u2);
    let mu = n1 * n2 / 2.0;
    let n = n1 + n2;
    // Tie-corrected variance.
    let tie_sum: f64 = crate::rank::tie_sizes(&pooled)
        .into_iter()
        .map(|t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let sigma2 = n1 * n2 / 12.0 * ((n + 1.0) - tie_sum / (n * (n - 1.0)));
    if sigma2 <= 0.0 {
        return TestOutcome {
            statistic: u,
            p_value: 1.0,
        };
    }
    let z = (u + 0.5 - mu) / sigma2.sqrt();
    let p = (2.0 * norm_cdf(z)).min(1.0);
    TestOutcome {
        statistic: u,
        p_value: p,
    }
}

/// Fligner–Killeen test of homogeneity of variances.
///
/// Each observation is centred by its group median; the absolute residuals
/// are ranked across groups and mapped to normal scores
/// `a = Φ⁻¹(1/2 + r / (2(N+1)))`; the statistic is
/// `X² = Σ nⱼ (āⱼ − ā)² / V²` with `V²` the sample variance of all scores,
/// asymptotically chi-square with `k − 1` degrees of freedom. This matches
/// R's `fligner.test`.
///
/// # Panics
/// If fewer than two groups are given or any group is empty.
pub fn fligner_killeen(groups: &[&[f64]]) -> TestOutcome {
    assert!(
        groups.len() >= 2,
        "fligner_killeen requires at least two groups"
    );
    assert!(
        groups.iter().all(|g| !g.is_empty()),
        "fligner_killeen: empty group"
    );
    // Absolute deviations from group medians, concatenated in group order.
    let mut abs_dev = Vec::new();
    let mut sizes = Vec::new();
    for g in groups {
        let mut sorted = g.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let m = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        abs_dev.extend(g.iter().map(|x| (x - m).abs()));
        sizes.push(g.len());
    }
    let n = abs_dev.len() as f64;
    let ranks = average_ranks(&abs_dev);
    let scores: Vec<f64> = ranks
        .iter()
        .map(|r| norm_quantile(0.5 + r / (2.0 * (n + 1.0))))
        .collect();
    let grand = scores.iter().sum::<f64>() / n;
    let v2 = scores.iter().map(|a| (a - grand).powi(2)).sum::<f64>() / (n - 1.0);
    if v2 <= 0.0 {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut stat = 0.0;
    let mut offset = 0;
    for &ni in &sizes {
        let mean_j = scores[offset..offset + ni].iter().sum::<f64>() / ni as f64;
        stat += ni as f64 * (mean_j - grand).powi(2);
        offset += ni;
    }
    stat /= v2;
    let df = (groups.len() - 1) as f64;
    TestOutcome {
        statistic: stat,
        p_value: chi2_sf(stat, df),
    }
}

/// Shapiro–Wilk test of normality, Royston's AS R94 approximation
/// (valid for 3 ≤ n ≤ 5000, matching R's `shapiro.test`).
///
/// Returns the W statistic and an approximate p-value.
///
/// # Panics
/// If `n < 3`, `n > 5000` or the sample is constant.
pub fn shapiro_wilk(data: &[f64]) -> TestOutcome {
    let n = data.len();
    assert!(
        (3..=5000).contains(&n),
        "shapiro_wilk requires 3 <= n <= 5000, got {n}"
    );
    let mut x = data.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    assert!(x[n - 1] > x[0], "shapiro_wilk: constant sample");

    // Expected normal order statistics (Blom approximation).
    let nf = n as f64;
    let m: Vec<f64> = (1..=n)
        .map(|i| norm_quantile((i as f64 - 0.375) / (nf + 0.25)))
        .collect();
    let m_sq_sum: f64 = m.iter().map(|v| v * v).sum();
    let rsn = 1.0 / nf.sqrt();

    // Weights (Royston's polynomial corrections to the last one/two).
    let mut a = vec![0.0; n];
    if n > 5 {
        let c_n = m[n - 1] / m_sq_sum.sqrt();
        let c_n1 = m[n - 2] / m_sq_sum.sqrt();
        let a_n = c_n + 0.221157 * rsn - 0.147981 * rsn.powi(2) - 2.071190 * rsn.powi(3)
            + 4.434685 * rsn.powi(4)
            - 2.706056 * rsn.powi(5);
        let a_n1 = c_n1 + 0.042981 * rsn - 0.293762 * rsn.powi(2) - 1.752461 * rsn.powi(3)
            + 5.682633 * rsn.powi(4)
            - 3.582633 * rsn.powi(5);
        let phi = (m_sq_sum - 2.0 * m[n - 1].powi(2) - 2.0 * m[n - 2].powi(2))
            / (1.0 - 2.0 * a_n.powi(2) - 2.0 * a_n1.powi(2));
        a[n - 1] = a_n;
        a[n - 2] = a_n1;
        a[0] = -a_n;
        a[1] = -a_n1;
        for i in 2..n - 2 {
            a[i] = m[i] / phi.sqrt();
        }
    } else {
        let c_n = m[n - 1] / m_sq_sum.sqrt();
        let a_n = if n == 3 {
            std::f64::consts::FRAC_1_SQRT_2
        } else {
            c_n + 0.221157 * rsn - 0.147981 * rsn.powi(2) - 2.071190 * rsn.powi(3)
                + 4.434685 * rsn.powi(4)
                - 2.706056 * rsn.powi(5)
        };
        let phi = (m_sq_sum - 2.0 * m[n - 1].powi(2)) / (1.0 - 2.0 * a_n.powi(2));
        a[n - 1] = a_n;
        a[0] = -a_n;
        for i in 1..n - 1 {
            a[i] = m[i] / phi.sqrt();
        }
    }

    // W statistic.
    let mean = x.iter().sum::<f64>() / nf;
    let ssq: f64 = x.iter().map(|v| (v - mean).powi(2)).sum();
    let num: f64 = a
        .iter()
        .zip(&x)
        .map(|(ai, xi)| ai * xi)
        .sum::<f64>()
        .powi(2);
    let w = (num / ssq).min(1.0);

    // P-value (Royston 1995).
    let p = if n == 3 {
        let pw = 6.0 / std::f64::consts::PI * ((w.sqrt().asin()) - (0.75f64.sqrt().asin()));
        pw.clamp(0.0, 1.0)
    } else {
        let lw = (1.0 - w).ln();
        let (mu, sigma, z) = if n <= 11 {
            let g = -2.273 + 0.459 * nf;
            let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf.powi(3);
            let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf.powi(3)).exp();
            let z = (-(g - lw).ln() - mu) / sigma;
            (mu, sigma, z)
        } else {
            let ln_n = nf.ln();
            let mu = -1.5861 - 0.31082 * ln_n - 0.083751 * ln_n * ln_n + 0.0038915 * ln_n.powi(3);
            let sigma = (-0.4803 - 0.082676 * ln_n + 0.0030302 * ln_n * ln_n).exp();
            let z = (lw - mu) / sigma;
            (mu, sigma, z)
        };
        let _ = (mu, sigma);
        1.0 - norm_cdf(z)
    };
    TestOutcome {
        statistic: w,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Jaccard similarity of two sets, `|A ∩ B| / |A ∪ B|`.
///
/// Appendix A validates device coalescing with Jaccard similarity over
/// (app, install-time) tuples and over registered-account sets; candidate
/// device pairs with different Android IDs had similarity ≤ 0.5625.
/// Returns 1.0 for two empty sets.
pub fn jaccard<T: std::hash::Hash + Eq>(
    a: &std::collections::HashSet<T>,
    b: &std::collections::HashSet<T>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

#[cfg(test)]
mod unit {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ks_disjoint_samples() {
        let out = ks_2samp(&[1.0, 2.0, 3.0, 4.0, 5.0], &[6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(out.statistic, 1.0);
        assert!(out.p_value < 0.01, "p = {}", out.p_value);
        assert!(out.significant());
    }

    #[test]
    fn ks_identical_samples() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = ks_2samp(&data, &data);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);
        assert!(!out.significant());
    }

    #[test]
    fn ks_statistic_reference() {
        // scipy.stats.ks_2samp([1,2,3,4],[3,4,5,6]).statistic = 0.5
        let out = ks_2samp(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]);
        assert!((out.statistic - 0.5).abs() < 1e-12);
        assert!(
            out.p_value > 0.05,
            "small overlapping samples not significant"
        );
    }

    #[test]
    fn anova_reference() {
        // Hand computation: F = 1.5 with (1, 4) dfs, p ≈ 0.288.
        let out = anova_oneway(&[&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]]);
        assert!((out.statistic - 1.5).abs() < 1e-12);
        assert!((out.p_value - 0.288).abs() < 0.005, "p = {}", out.p_value);
    }

    #[test]
    fn anova_identical_groups() {
        let out = anova_oneway(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]]);
        assert_eq!(out.statistic, 0.0);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn anova_degenerate_constant() {
        let all_same = anova_oneway(&[&[2.0, 2.0], &[2.0, 2.0]]);
        assert_eq!(all_same.p_value, 1.0);
        let separated = anova_oneway(&[&[1.0, 1.0], &[2.0, 2.0]]);
        assert_eq!(separated.p_value, 0.0);
    }

    #[test]
    fn kruskal_wallis_reference() {
        // H = 3.857 with df = 1; scipy p = 0.04953.
        let out = kruskal_wallis(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert!((out.statistic - 3.857_142_857).abs() < 1e-6);
        assert!(
            (out.p_value - 0.049_535).abs() < 1e-4,
            "p = {}",
            out.p_value
        );
    }

    #[test]
    fn kruskal_wallis_all_ties() {
        let out = kruskal_wallis(&[&[5.0, 5.0], &[5.0, 5.0]]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn mann_whitney_reference() {
        // U = 0; z with continuity correction = -1.7457; p ≈ 0.0809.
        let out = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 0.0809).abs() < 0.001, "p = {}", out.p_value);
    }

    #[test]
    fn fligner_equal_variances_not_significant() {
        let g1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
        let g2: Vec<f64> = (0..40)
            .map(|i| (i as f64 * 0.53).cos() * 2.0 + 10.0)
            .collect();
        let out = fligner_killeen(&[&g1, &g2]);
        assert!(!out.significant(), "p = {}", out.p_value);
    }

    #[test]
    fn fligner_unequal_variances_significant() {
        let g1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 0.1).collect();
        let g2: Vec<f64> = (0..40).map(|i| (i as f64 * 0.53).cos() * 50.0).collect();
        let out = fligner_killeen(&[&g1, &g2]);
        assert!(out.significant(), "p = {}", out.p_value);
    }

    #[test]
    fn shapiro_rejects_skewed_data() {
        // Heavily right-skewed (exponential-like) sample.
        let data: Vec<f64> = (1..=50).map(|i| (i as f64 / 3.0).exp() / 1e5).collect();
        let out = shapiro_wilk(&data);
        assert!(out.statistic < 0.8, "W = {}", out.statistic);
        assert!(out.significant(), "p = {}", out.p_value);
    }

    #[test]
    fn shapiro_accepts_normal_scores() {
        // Near-perfect normal sample: the normal quantiles themselves.
        let data: Vec<f64> = (1..=50)
            .map(|i| crate::special::norm_quantile(i as f64 / 51.0))
            .collect();
        let out = shapiro_wilk(&data);
        assert!(out.statistic > 0.98, "W = {}", out.statistic);
        assert!(!out.significant(), "p = {}", out.p_value);
    }

    #[test]
    fn shapiro_small_samples() {
        let out = shapiro_wilk(&[1.0, 2.0, 3.0]);
        assert!(out.statistic > 0.95 && out.statistic <= 1.0);
        let out5 = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert!(out5.statistic < 0.8, "outlier tanks W: {}", out5.statistic);
    }

    #[test]
    #[should_panic(expected = "shapiro_wilk requires")]
    fn shapiro_rejects_tiny_samples() {
        shapiro_wilk(&[1.0, 2.0]);
    }

    #[test]
    fn jaccard_values() {
        let a: HashSet<i32> = [1, 2, 3].into_iter().collect();
        let b: HashSet<i32> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty: HashSet<i32> = HashSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }
}
