//! Calibration tests: the generated fleet must reproduce the §6 statistics
//! of the paper within generous tolerances. These run at paper scale (803
//! devices), which is why they live in a separate integration-test binary.

use racket_agents::{Fleet, FleetConfig};
use racket_stats::Summary;
use racket_types::Cohort;

use std::sync::OnceLock;

/// One shared paper-scale fleet (generation costs a few seconds).
fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| Fleet::generate(FleetConfig::paper_scale()))
}

fn per_device<F: Fn(&racket_agents::StudyDevice) -> f64>(
    fleet: &Fleet,
    cohort: Cohort,
    f: F,
) -> Vec<f64> {
    fleet.cohort_devices(cohort).map(f).collect()
}

#[test]
fn population_counts_match_paper() {
    let fleet = fleet();
    assert_eq!(fleet.cohort_devices(Cohort::Regular).count(), 223);
    assert_eq!(fleet.cohort_devices(Cohort::Worker).count(), 580);
}

#[test]
fn gmail_accounts_match_section_6_2() {
    // Paper: workers mean 28.87 (M = 21, SD = 29.37, max 163); regular
    // max 10, M = 2.
    let fleet = fleet();
    let workers = Summary::of(&per_device(fleet, Cohort::Worker, |d| {
        d.device.gmail_accounts().count() as f64
    }))
    .unwrap();
    let regular = Summary::of(&per_device(fleet, Cohort::Regular, |d| {
        d.device.gmail_accounts().count() as f64
    }))
    .unwrap();
    assert!(
        (18.0..40.0).contains(&workers.mean),
        "worker gmail mean {} (paper 28.87)",
        workers.mean
    );
    assert!(
        (14.0..30.0).contains(&workers.median),
        "worker gmail median {} (paper 21)",
        workers.median
    );
    assert!(
        regular.max <= 10.0,
        "regular gmail max {} (paper 10)",
        regular.max
    );
    assert!(
        (1.0..4.0).contains(&regular.median),
        "regular gmail median {} (paper 2)",
        regular.median
    );
}

#[test]
fn account_type_diversity_matches_section_6_2() {
    // Paper: regular devices register ~6 service types (max 19); workers
    // fewer, concentrated on Gmail + ASO tooling.
    let fleet = fleet();
    let regular = Summary::of(&per_device(fleet, Cohort::Regular, |d| {
        d.device.account_service_count() as f64
    }))
    .unwrap();
    let workers = Summary::of(&per_device(fleet, Cohort::Worker, |d| {
        d.device.account_service_count() as f64
    }))
    .unwrap();
    assert!(
        (4.0..9.0).contains(&regular.mean),
        "regular types mean {}",
        regular.mean
    );
    assert!(
        workers.mean < regular.mean,
        "workers have fewer account types"
    );
}

#[test]
fn installed_apps_overlap_between_cohorts() {
    // Paper: 65.45 regular vs 77.56 worker — close enough that ANOVA found
    // no significant difference.
    let fleet = fleet();
    let regular = Summary::of(&per_device(fleet, Cohort::Regular, |d| {
        d.device.installed_count() as f64
    }))
    .unwrap();
    let workers = Summary::of(&per_device(fleet, Cohort::Worker, |d| {
        d.device.installed_count() as f64
    }))
    .unwrap();
    assert!(
        (45.0..95.0).contains(&regular.mean),
        "regular installs {}",
        regular.mean
    );
    assert!(
        (55.0..115.0).contains(&workers.mean),
        "worker installs {}",
        workers.mean
    );
    assert!(workers.mean > regular.mean, "workers install slightly more");
    assert!(workers.mean < 1.6 * regular.mean, "distributions overlap");
}

#[test]
fn total_reviews_per_device_match_figure_6() {
    // Paper: worker devices average 208.91 total reviews from registered
    // accounts (11 devices > 1,000); regular devices 1.91 (max 36).
    let fleet = fleet();
    let totals = |cohort| {
        per_device(fleet, cohort, |d| {
            d.agent
                .gmail_identities()
                .iter()
                .map(|&(_, g)| fleet.store.reviews_by(g).len() as f64)
                .sum()
        })
    };
    let workers = Summary::of(&totals(Cohort::Worker)).unwrap();
    let regular = Summary::of(&totals(Cohort::Regular)).unwrap();
    assert!(
        (100.0..350.0).contains(&workers.mean),
        "worker total reviews mean {} (paper 208.91)",
        workers.mean
    );
    assert!(
        regular.mean < 8.0,
        "regular total reviews mean {} (paper 1.91)",
        regular.mean
    );
    assert!(
        workers.max > 700.0,
        "heavy tail expected, max {}",
        workers.max
    );
}

#[test]
fn stopped_apps_heavier_on_worker_devices() {
    // Paper Figure 8: workers accumulate stopped apps (dedicated median 23).
    let fleet = fleet();
    let workers = Summary::of(&per_device(fleet, Cohort::Worker, |d| {
        d.device.stopped_apps().len() as f64
    }))
    .unwrap();
    let regular = Summary::of(&per_device(fleet, Cohort::Regular, |d| {
        d.device.stopped_apps().len() as f64
    }))
    .unwrap();
    assert!(
        workers.median > 2.0 * regular.median.max(1.0),
        "worker stopped median {} vs regular {}",
        workers.median,
        regular.median
    );
}

#[test]
fn churn_rates_match_figure_9() {
    // Paper: worker 15.94 installs/day (M = 6.41), regular 3.88 (M = 2.0).
    let fleet = fleet();
    let workers = Summary::of(&per_device(fleet, Cohort::Worker, |d| {
        d.agent.profile.install_rate
    }))
    .unwrap();
    let regular = Summary::of(&per_device(fleet, Cohort::Regular, |d| {
        d.agent.profile.install_rate
    }))
    .unwrap();
    assert!(
        (9.0..23.0).contains(&workers.mean),
        "worker churn mean {}",
        workers.mean
    );
    assert!(
        (2.5..5.5).contains(&regular.mean),
        "regular churn mean {}",
        regular.mean
    );
    assert!(
        (4.0..9.0).contains(&workers.median),
        "worker churn median {}",
        workers.median
    );
}

#[test]
fn install_to_review_delays_differ() {
    // Check the delay distributions through the store joins: reviews by
    // device accounts for currently installed apps, positive deltas only
    // (§6.3). Workers skew fast, regular users slow.
    let fleet = fleet();
    let delays = |cohort| {
        let mut out = Vec::new();
        for d in fleet.cohort_devices(cohort) {
            for &(_, g) in d.agent.gmail_identities() {
                for r in fleet.store.reviews_by(g) {
                    if let Some(info) = d.device.installed_app(r.app) {
                        let delta = r.posted_at.signed_delta_secs(info.install_time);
                        if delta >= 0 {
                            out.push(delta as f64 / 86_400.0);
                        }
                    }
                }
            }
        }
        out
    };
    let w = delays(Cohort::Worker);
    let r = delays(Cohort::Regular);
    assert!(
        w.len() > 10 * r.len().max(1),
        "workers post far more joinable reviews"
    );
    let ws = Summary::of(&w).unwrap();
    assert!(
        (3.0..20.0).contains(&ws.mean),
        "worker delay mean {} (paper 10.4)",
        ws.mean
    );
    let fast = w.iter().filter(|&&d| d <= 1.0).count() as f64 / w.len() as f64;
    assert!((0.2..0.55).contains(&fast), "P(≤1d) = {fast} (paper 0.33)");
    if r.len() >= 10 {
        let rs = Summary::of(&r).unwrap();
        assert!(
            rs.mean > 25.0,
            "regular delay mean {} (paper 85.09)",
            rs.mean
        );
    }
}
