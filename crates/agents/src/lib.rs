//! Behavioural personas and the fleet simulator.
//!
//! The study's ground truth is 803 devices — 580 controlled by ASO workers
//! and 223 by regular users (§4, §5). That population is unreachable from a
//! reproduction environment, so this crate replaces it with a generative
//! model calibrated to every statistic §6 reports:
//!
//! * [`PersonaParams`] — per-persona distributions for registered accounts,
//!   installed apps, daily churn, app-opening behaviour, review propensity
//!   and install-to-review delay;
//! * [`DeviceAgent`] — samples a per-device latent profile and produces the
//!   device's behaviour, day by day;
//! * [`Fleet`] — generates the full study population (devices + Play-store
//!   state + Google-ID directory + VirusTotal), simulates the pre-study
//!   *history* (which is where install times and most reviews come from),
//!   and plans the per-device timeline for the monitored study window.
//!
//! Calibration targets are asserted by this crate's tests (tolerances are
//! generous — the goal is the paper's *shape*: worker ≫ regular on Gmail
//! accounts, reviews and churn; regular ≫ worker on account-type diversity
//! and install-to-review delay).

#![deny(missing_docs)]

pub mod agent;
pub mod campaign;
pub mod dist;
pub mod fleet;
pub mod lane;
pub mod params;
pub mod textgen;

pub use agent::{
    apply_action, apply_action_collecting, Action, DeviceAgent, DeviceProfile, IdAllocator,
    TimelineAction,
};
pub use campaign::{
    expand_directives, CampaignConfig, CampaignDirective, CampaignPlan, CampaignSpec,
    PacingStrategy, CAMPAIGN_STREAM_SALT,
};
pub use dist::{ClampedLogNormal, DelayMixture};
pub use fleet::{stream_seed, Fleet, FleetConfig, PersonaOverrides, StudyDevice};
pub use lane::LaneScratch;
pub use params::PersonaParams;
pub use textgen::{TextGen, TEXT_STREAM_SALT};
