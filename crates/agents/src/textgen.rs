//! Deterministic templated review-text generation.
//!
//! Review text is a *pure function* of stable identity keys — it is never
//! drawn from a device's RNG stream. Enabling text therefore cannot
//! perturb any existing decision stream: a text-off study is byte-identical
//! to a pre-text build, and a text-on study differs only by the text
//! payloads themselves (pinned by `tests/text_equivalence.rs`).
//!
//! Three generation tiers mirror the paper's §6.3 review-writing economy:
//!
//! * **Personal** — keyed by `(seed, google_id, app, stars)`. Every
//!   (account, app) pair writes from its own corner of the template space,
//!   so organic reviews are mutually distant under SimHash: the
//!   near-duplicate detector's negative control.
//! * **Worker promo** — keyed by `(seed, device base identity, app)` with a
//!   per-posting-account suffix word. One worker writes one text per
//!   promoted app and posts light edits of it from each of their accounts —
//!   near-duplicates *within* a device, distant *across* devices.
//! * **Campaign** — keyed by `(seed, campaign, app)` only. Every hired
//!   worker pastes the organizer-supplied template verbatim; ~30% of
//!   account slots append one slot-keyed word. Cross-device near-duplicate
//!   clusters — the signal `racket-campaign` joins as its second LSH
//!   candidate source.
//!
//! The vocabulary pools deliberately overlap the `racket-text` sentiment
//! lexicon so the rating–text divergence feature sees correlated signal:
//! 4–5★ texts score positive, 1–2★ negative, 3★ near zero.

use racket_types::Rating;

/// Salt separating the review-text key family from the device
/// (`stream_seed(seed, i)`), campaign, driver and fault stream families.
pub const TEXT_STREAM_SALT: u64 = 0x7EA7_5EED_C0DE_2021;

/// SplitMix64 finalizer (same mixer the fleet's `stream_seed` uses).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const POS_ADJ: &[&str] = &[
    "great",
    "awesome",
    "amazing",
    "excellent",
    "fantastic",
    "perfect",
    "wonderful",
    "superb",
    "brilliant",
    "nice",
    "beautiful",
    "smooth",
];
const POS_VERB: &[&str] = &["love", "recommend", "enjoy", "like", "adore"];
const POS_TAIL: &[&str] = &[
    "works perfectly",
    "very easy to use",
    "fast and reliable",
    "simple and smooth",
    "really useful every day",
    "so much fun",
    "best in its class",
    "five stars from me",
    "helpful support too",
    "good design all around",
];
const NEG_ADJ: &[&str] = &[
    "terrible", "awful", "bad", "horrible", "broken", "useless", "buggy", "laggy", "unusable",
    "poor",
];
const NEG_TAIL: &[&str] = &[
    "crashes all the time",
    "freezes on startup",
    "full of ads",
    "a total waste of time",
    "asking for a refund",
    "worst update ever",
    "slow and annoying",
    "looks like a scam",
];
const MID_TAIL: &[&str] = &[
    "does the job",
    "could be better",
    "average at best",
    "needs more features",
    "ok for now",
    "not sure yet",
    "decent but unpolished",
];
const SUBJECT: &[&str] = &["app", "game", "tool", "update", "interface", "design"];
const FILLER: &[&str] = &[
    "really",
    "honestly",
    "definitely",
    "overall",
    "simply",
    "truly",
    "absolutely",
    "totally",
];

fn pick<'a>(pool: &[&'a str], key: u64) -> &'a str {
    pool[(key % pool.len() as u64) as usize]
}

fn push_phrase(out: &mut String, phrase: &str) {
    if !out.is_empty() {
        out.push(' ');
    }
    out.push_str(phrase);
}

/// Render one review text from a key and a star rating. The rating picks
/// the sentiment branch (4–5★ positive, 1–2★ negative, 3★ neutral); the
/// key picks the template and fills its slots.
fn compose(key: u64, stars: u8) -> String {
    let k0 = mix64(key ^ 0xA1);
    let k1 = mix64(key ^ 0xB2);
    let k2 = mix64(key ^ 0xC3);
    let k3 = mix64(key ^ 0xD4);
    let k4 = mix64(key ^ 0xE5);
    let mut text = String::with_capacity(80);
    if stars >= 4 {
        match k0 % 4 {
            0 => {
                push_phrase(&mut text, pick(FILLER, k1));
                push_phrase(&mut text, pick(POS_ADJ, k2));
                push_phrase(&mut text, pick(SUBJECT, k3));
                push_phrase(&mut text, pick(POS_TAIL, k4));
            }
            1 => {
                push_phrase(&mut text, pick(POS_ADJ, k1));
                push_phrase(&mut text, pick(SUBJECT, k2));
                push_phrase(&mut text, "i");
                push_phrase(&mut text, pick(POS_VERB, k3));
                push_phrase(&mut text, "it");
                push_phrase(&mut text, pick(POS_TAIL, k4));
            }
            2 => {
                push_phrase(&mut text, "i");
                push_phrase(&mut text, pick(POS_VERB, k1));
                push_phrase(&mut text, "this");
                push_phrase(&mut text, pick(SUBJECT, k2));
                push_phrase(&mut text, pick(POS_TAIL, k3));
                push_phrase(&mut text, pick(FILLER, k4));
                push_phrase(&mut text, pick(POS_ADJ, mix64(k4 ^ k1)));
            }
            _ => {
                push_phrase(&mut text, pick(POS_ADJ, k1));
                push_phrase(&mut text, "and");
                push_phrase(&mut text, pick(POS_ADJ, k2));
                push_phrase(&mut text, pick(SUBJECT, k3));
                push_phrase(&mut text, pick(POS_TAIL, k4));
            }
        }
    } else if stars <= 2 {
        match k0 % 3 {
            0 => {
                push_phrase(&mut text, pick(NEG_ADJ, k1));
                push_phrase(&mut text, pick(SUBJECT, k2));
                push_phrase(&mut text, pick(NEG_TAIL, k3));
            }
            1 => {
                push_phrase(&mut text, pick(FILLER, k1));
                push_phrase(&mut text, pick(NEG_ADJ, k2));
                push_phrase(&mut text, "this");
                push_phrase(&mut text, pick(SUBJECT, k3));
                push_phrase(&mut text, pick(NEG_TAIL, k4));
            }
            _ => {
                push_phrase(&mut text, pick(NEG_ADJ, k1));
                push_phrase(&mut text, "and");
                push_phrase(&mut text, pick(NEG_ADJ, k2));
                push_phrase(&mut text, pick(NEG_TAIL, k3));
            }
        }
    } else {
        push_phrase(&mut text, pick(SUBJECT, k1));
        push_phrase(&mut text, pick(MID_TAIL, k2));
        if k0.is_multiple_of(2) {
            push_phrase(&mut text, "but");
            push_phrase(&mut text, pick(MID_TAIL, k3));
        }
    }
    text
}

/// The deterministic review-text generator for one fleet.
///
/// Constructed from the fleet master seed; every output is a pure function
/// of `(master seed, tier keys)`, so text generation consumes no RNG and
/// is independent of thread count and build order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextGen {
    seed: u64,
}

impl TextGen {
    /// A generator on the fleet's text stream family.
    pub fn new(master_seed: u64) -> Self {
        TextGen {
            seed: mix64(master_seed ^ TEXT_STREAM_SALT),
        }
    }

    /// Mix tier tag and two identity keys into one template key.
    fn key(&self, tier: u64, a: u64, b: u64) -> u64 {
        mix64(mix64(mix64(self.seed ^ tier) ^ a) ^ b)
    }

    /// Personal-tier text: unique per (account, app, rating).
    pub fn personal(&self, google_id: u64, app: u64, rating: Rating) -> String {
        let stars = rating.stars();
        compose(
            mix64(self.key(0x01, google_id, app) ^ u64::from(stars)),
            stars,
        )
    }

    /// Worker-promo-tier text: one base template per (device, app), with a
    /// suffix word keyed by the posting account. Promo ratings are always
    /// 4–5★, so the base template is rating-independent and every account
    /// on the device posts a near-duplicate of it.
    pub fn worker_promo(
        &self,
        base_google_id: u64,
        app: u64,
        account_google_id: u64,
        rating: Rating,
    ) -> String {
        let base_key = self.key(0x02, base_google_id, app);
        let mut text = compose(base_key, rating.stars().max(4));
        let v = mix64(base_key ^ mix64(account_google_id ^ 0x51));
        push_phrase(&mut text, pick(FILLER, v));
        text
    }

    /// Campaign-tier text: the organizer's template, keyed by
    /// `(campaign, app)` only, pasted verbatim by every hired worker; ~30%
    /// of account slots append one slot-keyed word.
    pub fn campaign(&self, campaign: u32, app: u64, account_slot: u32, rating: Rating) -> String {
        let base_key = self.key(0x03, u64::from(campaign), app);
        let mut text = compose(base_key, rating.stars().max(4));
        let v = mix64(base_key ^ mix64(u64::from(account_slot) ^ 0x77));
        if v % 10 < 3 {
            push_phrase(&mut text, pick(FILLER, mix64(v)));
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_text::{hamming, sentiment_score, simhash64_of_text};

    const FIVE: Rating = Rating::FIVE;

    #[test]
    fn generation_is_deterministic() {
        let g = TextGen::new(2021);
        assert_eq!(g.personal(7, 3, FIVE), g.personal(7, 3, FIVE));
        assert_eq!(
            g.worker_promo(9, 3, 11, FIVE),
            g.worker_promo(9, 3, 11, FIVE)
        );
        assert_eq!(g.campaign(0, 3, 5, FIVE), g.campaign(0, 3, 5, FIVE));
        assert_ne!(TextGen::new(2021), TextGen::new(2022));
    }

    #[test]
    fn personal_texts_are_mutually_distant() {
        let g = TextGen::new(2021);
        let texts: Vec<String> = (0..20).map(|i| g.personal(i, 42, FIVE)).collect();
        let mut min_d = 64;
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                let d = hamming(
                    simhash64_of_text(&texts[i], 2),
                    simhash64_of_text(&texts[j], 2),
                );
                min_d = min_d.min(d);
            }
        }
        assert!(min_d > 6, "organic texts collided at hamming {min_d}");
    }

    #[test]
    fn worker_promo_is_near_duplicate_within_device_only() {
        let g = TextGen::new(2021);
        let a = g.worker_promo(100, 42, 101, FIVE);
        let b = g.worker_promo(100, 42, 102, FIVE);
        assert_ne!(a, b, "per-account suffix varies the text");
        let d = hamming(simhash64_of_text(&a, 2), simhash64_of_text(&b, 2));
        assert!(d <= 16, "same-device accounts are near-duplicates, got {d}");
        // Base text (all but the suffix word) is shared verbatim.
        let strip = |t: &str| t.rsplit_once(' ').map(|(h, _)| h.to_string()).unwrap();
        assert_eq!(strip(&a), strip(&b));
        // A different device writes its own template.
        let c = g.worker_promo(200, 42, 201, FIVE);
        let d = hamming(simhash64_of_text(&a, 2), simhash64_of_text(&c, 2));
        assert!(d > 16, "cross-device promo texts must differ, got {d}");
    }

    #[test]
    fn campaign_texts_are_templates_shared_across_workers() {
        let g = TextGen::new(2021);
        let texts: Vec<String> = (0..16).map(|slot| g.campaign(3, 42, slot, FIVE)).collect();
        let base = texts
            .iter()
            .min_by_key(|t| t.len())
            .expect("non-empty")
            .clone();
        for t in &texts {
            assert!(t.starts_with(&base), "{t:?} does not extend {base:?}");
            let d = hamming(simhash64_of_text(&base, 2), simhash64_of_text(t, 2));
            assert!(d <= 16, "campaign slot drifted to hamming {d}");
        }
        // Some slots paste the template verbatim, some append a word.
        assert!(texts.contains(&base));
        assert!(texts.iter().any(|t| *t != base));
        // A different campaign gets a different template.
        assert_ne!(g.campaign(4, 42, 0, FIVE), g.campaign(3, 42, 0, FIVE));
    }

    #[test]
    fn sentiment_tracks_rating() {
        let g = TextGen::new(7);
        for i in 0..30u64 {
            let pos = g.personal(i, i + 1, Rating::FIVE);
            let neg = g.personal(i, i + 1, Rating::ONE);
            assert!(sentiment_score(&pos) > 0, "5-star text {pos:?} scored flat");
            assert!(sentiment_score(&neg) < 0, "1-star text {neg:?} scored flat");
        }
    }
}
