//! Fleet generation: the study population in one value.
//!
//! [`Fleet::generate`] builds the app catalog, the Play-store review state
//! (fleet history plus background volume), the Google-ID directory, the
//! VirusTotal service, and one [`StudyDevice`] per participant device with
//! its persona, hardware model, monitoring window and stateful agent.
//!
//! Default composition mirrors §5: 223 regular devices and 580 worker
//! devices, of which ~69% are organic and ~31% dedicated (§8.2's 123/55
//! split of the analyzable workers). Monitoring windows are heterogeneous
//! (participants kept the app "at least two days", §4) and a configurable
//! fraction of devices reports no Android ID (Appendix A).

use crate::agent::{DeviceAgent, IdAllocator};
use crate::campaign::{CampaignConfig, CampaignDirective, CampaignPlan, CampaignSpec};
use crate::params::PersonaParams;
use racket_device::{Device, DeviceModel};
use racket_playstore::{
    catalog::CatalogConfig, AppCatalog, GoogleIdDirectory, ReviewStore, VirusTotalSim,
};
use racket_types::{AndroidId, DeviceId, InstallId, ParticipantId, Persona, SimTime, TimeInterval};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Account/Google-ID range reserved per device under parallel generation:
/// device *i* allocates IDs in `(i * STRIDE, (i + 1) * STRIDE]`. Far above
/// any persona's account count, so ranges never collide.
pub(crate) const ID_STRIDE: u64 = 1_000_000;

/// Derive the seed of an independent per-device RNG stream from the fleet
/// master seed (SplitMix64 finalizer over `seed ⊕ f(index)`).
///
/// Each device draws every one of its random decisions from its own stream,
/// so the generated fleet is a pure function of `(master, index)` — the
/// same whether devices are built serially or on any number of worker
/// threads, in any order.
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fleet composition and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Regular-user devices.
    pub n_regular: usize,
    /// Organic-worker devices.
    pub n_organic: usize,
    /// Dedicated-worker devices.
    pub n_dedicated: usize,
    /// Pre-study history length in days (install times and most reviews
    /// accumulate here).
    pub history_days: u64,
    /// Maximum monitored window per device, in days; actual windows are
    /// uniform in `[2, max_study_days]`.
    pub max_study_days: u64,
    /// Fraction of devices whose model fails to report `ANDROID_ID`.
    pub no_android_id_rate: f64,
    /// App catalog composition.
    pub catalog: CatalogConfig,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional persona-parameter overrides — the lever for the §9
    /// worker-evasion experiments (longer review delays, fewer accounts,
    /// more app interaction). `None` keeps the calibrated defaults.
    pub overrides: PersonaOverrides,
    /// Coordinated-campaign schedule (§7.3 lockstep ground truth). The
    /// default runs zero campaigns, leaving every campaign-free study
    /// byte-identical to pre-campaign builds.
    pub campaigns: CampaignConfig,
    /// Generate review text for every posted review (ARCHITECTURE.md §13).
    /// Text is keyed on its own stream family
    /// ([`crate::textgen::TEXT_STREAM_SALT`]), never drawn from device
    /// RNGs, so the default `false` keeps every text-off study
    /// byte-identical to pre-text builds.
    pub review_text: bool,
}

/// Optional per-persona parameter replacements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersonaOverrides {
    /// Replacement for [`PersonaParams::regular`].
    pub regular: Option<PersonaParams>,
    /// Replacement for [`PersonaParams::organic_worker`].
    pub organic: Option<PersonaParams>,
    /// Replacement for [`PersonaParams::dedicated_worker`].
    pub dedicated: Option<PersonaParams>,
}

impl PersonaOverrides {
    /// The effective parameters for a persona.
    pub fn params_for(&self, persona: Persona) -> PersonaParams {
        let slot = match persona {
            Persona::Regular => &self.regular,
            Persona::OrganicWorker => &self.organic,
            Persona::DedicatedWorker => &self.dedicated,
        };
        slot.clone()
            .unwrap_or_else(|| PersonaParams::for_persona(persona))
    }
}

impl FleetConfig {
    /// The paper's population: 223 regular + 580 worker devices (§5), the
    /// workers split ~69%/31% organic/dedicated (§8.2).
    pub fn paper_scale() -> Self {
        FleetConfig {
            n_regular: 223,
            n_organic: 400,
            n_dedicated: 180,
            history_days: 540,
            max_study_days: 12,
            no_android_id_rate: 0.06,
            catalog: CatalogConfig::default(),
            seed: 2021,
            overrides: PersonaOverrides::default(),
            campaigns: CampaignConfig::default(),
            review_text: false,
        }
    }

    /// A small fleet for unit/integration tests (fast to generate).
    pub fn test_scale() -> Self {
        FleetConfig {
            n_regular: 20,
            n_organic: 25,
            n_dedicated: 15,
            history_days: 90,
            max_study_days: 6,
            no_android_id_rate: 0.1,
            catalog: CatalogConfig::default(),
            seed: 7,
            overrides: PersonaOverrides::default(),
            campaigns: CampaignConfig::default(),
            review_text: false,
        }
    }

    /// Total number of devices.
    pub fn n_devices(&self) -> usize {
        self.n_regular + self.n_organic + self.n_dedicated
    }

    /// Study start (history ends here).
    pub fn study_start(&self) -> SimTime {
        SimTime::from_days(self.history_days)
    }

    /// Latest possible study end.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_days(self.history_days + self.max_study_days)
    }
}

/// One participant device with its ground truth and agent.
#[derive(Debug)]
pub struct StudyDevice {
    /// The simulated device.
    pub device: Device,
    /// Its behavioural agent (persona, profile, pending reviews).
    pub agent: DeviceAgent,
    /// Participant code assigned at recruitment.
    pub participant: ParticipantId,
    /// Install ID generated by the RacketStore app instance.
    pub install_id: InstallId,
    /// The monitored window (RacketStore install interval).
    pub monitoring: TimeInterval,
    /// Campaign jobs assigned to this device, sorted by install time
    /// (empty for regular users and non-hired workers).
    pub directives: Vec<CampaignDirective>,
}

impl StudyDevice {
    /// Ground-truth persona.
    pub fn persona(&self) -> Persona {
        self.agent.persona()
    }

    /// Days of monitoring coverage.
    pub fn active_days(&self) -> f64 {
        self.monitoring.duration().as_days()
    }
}

/// The generated study population.
#[derive(Debug)]
pub struct Fleet {
    /// The app catalog.
    pub catalog: AppCatalog,
    /// Play-store review state (history already posted).
    pub store: ReviewStore,
    /// Gmail → Google ID directory.
    pub directory: GoogleIdDirectory,
    /// VirusTotal service.
    pub virustotal: VirusTotalSim,
    /// The participant devices.
    pub devices: Vec<StudyDevice>,
    /// Ground-truth campaign specs (empty unless `config.campaigns`
    /// schedules any).
    pub campaigns: Vec<CampaignSpec>,
    /// The config the fleet was generated from.
    pub config: FleetConfig,
}

impl Fleet {
    /// Generate the full study population. Deterministic in `config.seed`.
    pub fn generate(config: FleetConfig) -> Fleet {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let catalog = AppCatalog::generate(&config.catalog);
        let mut store = ReviewStore::new();
        let mut directory = GoogleIdDirectory::new();

        // Background review volume: popular apps carry store-scale review
        // counts (the §7.2 non-suspicious rule needs ≥ 15,000); the tail
        // and promoted apps far less.
        for (rank, &app) in catalog.consumer_apps().iter().enumerate() {
            let volume = if rank < config.catalog.n_popular {
                // 5M at rank 0 decaying toward ~16k.
                (5_000_000.0 / (rank + 1) as f64).max(16_000.0) as u64
            } else {
                // Long tail: mostly small, but niche apps can still carry
                // store-scale review volume (a regional hit is obscure to
                // workers yet heavily reviewed).
                rng.gen_range(100..40_000)
            };
            store.seed_background(app, volume);
        }
        for &app in catalog.promoted_apps() {
            store.seed_background(app, rng.gen_range(20..2_500));
        }

        // VirusTotal: all catalog hashes known, a slice unavailable
        // (the paper's 12,431-of-18,079 coverage).
        let all_hashes: Vec<_> = catalog.apps().iter().map(|a| a.apk_hash).collect();
        let unavailable: Vec<_> = all_hashes
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.3))
            .collect();
        let virustotal = VirusTotalSim::new(all_hashes, catalog.malware_hashes(), unavailable);

        // Devices — built in parallel, one independent RNG stream, ID range
        // and local store/directory per device, then merged serially in
        // device order. Output is a pure function of `config`, never of the
        // worker-thread count (see ARCHITECTURE.md, "Determinism contract").
        let personas: Vec<(usize, Persona)> = std::iter::empty()
            .chain(std::iter::repeat_n(Persona::Regular, config.n_regular))
            .chain(std::iter::repeat_n(
                Persona::OrganicWorker,
                config.n_organic,
            ))
            .chain(std::iter::repeat_n(
                Persona::DedicatedWorker,
                config.n_dedicated,
            ))
            .enumerate()
            .collect();

        let study_start = config.study_start();
        // Per-device build timing goes to the process-default registry
        // (fleet generation has no study registry yet — the study's own
        // fleet_gen span wraps this whole function).
        let obs = racket_obs::global();
        let built: Vec<(StudyDevice, ReviewStore, GoogleIdDirectory)> = personas
            .into_par_iter()
            .map(|(i, persona)| {
                let _span = racket_obs::span!(obs, "fleet_gen/device", device = i);
                Self::build_device(&config, &catalog, study_start, i, persona)
            })
            .collect();

        let mut devices = Vec::with_capacity(built.len());
        for (dev, local_store, local_directory) in built {
            store.absorb(local_store);
            directory.absorb(local_directory);
            devices.push(dev);
        }

        // Campaign schedule: drawn on its own salted stream family, then
        // attached to the hired devices after the parallel build (the plan
        // never touches a device RNG, so device streams stay byte-identical
        // with campaigns on or off).
        let plan = CampaignPlan::generate(&config, &catalog);
        for (dev, jobs) in devices.iter_mut().zip(plan.directives) {
            dev.directives = jobs;
        }

        Fleet {
            catalog,
            store,
            directory,
            virustotal,
            devices,
            campaigns: plan.specs,
            config,
        }
    }

    /// Build device `i` of the fleet on its own RNG stream, returning the
    /// device together with the review-store and directory state its
    /// history produced (merged into the fleet stores by the caller).
    fn build_device(
        config: &FleetConfig,
        catalog: &AppCatalog,
        study_start: SimTime,
        i: usize,
        persona: Persona,
    ) -> (StudyDevice, ReviewStore, GoogleIdDirectory) {
        let mut rng = StdRng::seed_from_u64(stream_seed(config.seed, i as u64));
        let mut store = ReviewStore::new();
        let mut directory = GoogleIdDirectory::new();
        let mut ids = IdAllocator::with_base(i as u64 * ID_STRIDE);

        let mut model = DeviceModel::generic();
        model.model = format!("SM-SIM{i:04}");
        model.reports_android_id = !rng.gen_bool(config.no_android_id_rate);
        let mut device = Device::new(DeviceId(i as u32), model, AndroidId(0x1000 + i as u64));

        let mut agent = DeviceAgent::with_params(config.overrides.params_for(persona), &mut rng);
        if config.review_text {
            // Pure configuration: no RNG draw, so the device stream below
            // is byte-identical with text on or off.
            agent.set_textgen(Some(crate::textgen::TextGen::new(config.seed)));
        }
        // Device-specific monitored window: at least 2 days (§4).
        let days = rng.gen_range(2..=config.max_study_days.max(2));
        let monitoring = TimeInterval::new(
            study_start,
            study_start + racket_types::SimDuration::from_days(days),
        );
        agent.setup_history(
            &mut device,
            catalog,
            &mut store,
            &mut directory,
            &mut ids,
            study_start,
            monitoring.end,
            &mut rng,
        );

        let dev = StudyDevice {
            device,
            agent,
            participant: ParticipantId(100_000 + i as u32),
            install_id: InstallId(1_000_000_000 + i as u64),
            monitoring,
            directives: Vec::new(),
        };
        (dev, store, directory)
    }

    /// Devices of one cohort.
    pub fn cohort_devices(
        &self,
        cohort: racket_types::Cohort,
    ) -> impl Iterator<Item = &StudyDevice> {
        self.devices
            .iter()
            .filter(move |d| d.persona().cohort() == cohort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::Cohort;

    #[test]
    fn test_scale_generates_expected_population() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        assert_eq!(fleet.devices.len(), 60);
        assert_eq!(fleet.cohort_devices(Cohort::Regular).count(), 20);
        assert_eq!(fleet.cohort_devices(Cohort::Worker).count(), 40);
    }

    #[test]
    fn monitoring_windows_at_least_two_days() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        for d in &fleet.devices {
            assert!(d.active_days() >= 2.0);
            assert_eq!(d.monitoring.start, fleet.config.study_start());
            assert!(d.monitoring.end <= fleet.config.horizon());
        }
    }

    #[test]
    fn participant_and_install_ids_valid_and_unique() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        let mut participants: Vec<_> = fleet.devices.iter().map(|d| d.participant).collect();
        participants.sort();
        participants.dedup();
        assert_eq!(participants.len(), fleet.devices.len());
        for d in &fleet.devices {
            assert!(d.participant.is_valid());
            assert!(d.install_id.is_valid());
        }
    }

    #[test]
    fn some_devices_lack_android_id() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        let missing = fleet
            .devices
            .iter()
            .filter(|d| d.device.android_id().is_none())
            .count();
        assert!(missing >= 1, "no_android_id_rate should bite at 10% of 60");
        assert!(missing < fleet.devices.len() / 2);
    }

    #[test]
    fn store_has_history_reviews_and_background_volume() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        assert!(
            fleet.store.total_reviews() > 100,
            "workers reviewed in history"
        );
        // The most popular app carries store-scale volume.
        let popular = fleet.catalog.consumer_apps()[0];
        assert!(fleet.store.public_review_count(popular) >= 15_000);
    }

    #[test]
    fn account_ids_unique_across_devices() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        let mut ids: Vec<_> = fleet
            .devices
            .iter()
            .flat_map(|d| d.agent.gmail_identities().iter().map(|(a, _)| *a))
            .collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "per-device ID ranges must not collide");
    }

    #[test]
    fn stream_seeds_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|i| stream_seed(2021, i)).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0), "master seed matters");
    }

    #[test]
    fn generation_deterministic() {
        let a = Fleet::generate(FleetConfig::test_scale());
        let b = Fleet::generate(FleetConfig::test_scale());
        assert_eq!(a.store.total_reviews(), b.store.total_reviews());
        for (da, db) in a.devices.iter().zip(&b.devices) {
            assert_eq!(da.device.installed_count(), db.device.installed_count());
            assert_eq!(da.device.accounts().len(), db.device.accounts().len());
        }
    }

    #[test]
    fn workers_have_more_gmail_accounts_on_average() {
        let fleet = Fleet::generate(FleetConfig::test_scale());
        let avg = |cohort: Cohort| {
            let devs: Vec<_> = fleet.cohort_devices(cohort).collect();
            devs.iter()
                .map(|d| d.device.gmail_accounts().count() as f64)
                .sum::<f64>()
                / devs.len() as f64
        };
        assert!(
            avg(Cohort::Worker) > 3.0 * avg(Cohort::Regular),
            "worker {} vs regular {}",
            avg(Cohort::Worker),
            avg(Cohort::Regular)
        );
    }
}
