//! The per-device behavioural agent.
//!
//! A [`DeviceAgent`] owns a sampled [`DeviceProfile`] (the device's latent
//! rates) and produces behaviour in two phases:
//!
//! 1. [`DeviceAgent::setup_history`] — populates the device as it would
//!    look when the study begins: registered accounts, installed apps with
//!    realistic past install times, usage history, force-stopped apps, and
//!    the reviews those installs generated (posted into the Play-store
//!    simulator). Workers additionally have *past jobs*: promoted apps
//!    reviewed from their accounts and since uninstalled — the bulk of the
//!    208.91 average total reviews per worker device (§6.3, Figure 6).
//! 2. [`DeviceAgent::plan_day`] — during the monitored window, plans one
//!    day of timestamped actions (installs, uninstalls, opens, stops,
//!    reviews) against the device's *current* state. Reviews are scheduled
//!    at install time with persona-calibrated delays and fire on the day
//!    they fall due.

use crate::dist::poisson;
use crate::params::PersonaParams;
use racket_playstore::{AppCatalog, GoogleIdDirectory, ReviewStore};
use racket_types::{
    AccountId, AccountService, AppId, GoogleId, Permission, PermissionProfile, Persona, Rating,
    RegisteredAccount, Review, SimDuration, SimTime,
};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BinaryHeap;

/// Allocates globally unique account / Google IDs across the fleet.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// An allocator whose first ID is `base + 1`.
    ///
    /// Parallel fleet generation gives every device a disjoint ID range
    /// (device *i* starts at `i * stride`), so per-device allocators can
    /// run on worker threads without coordination and still produce
    /// fleet-unique IDs.
    pub fn with_base(base: u64) -> Self {
        IdAllocator { next: base }
    }

    /// Allocate the next (account, google) ID pair.
    pub fn next_account(&mut self) -> (AccountId, GoogleId) {
        self.next += 1;
        (AccountId(self.next), GoogleId(self.next))
    }
}

/// The latent per-device profile, sampled once from [`PersonaParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Gmail accounts on the device.
    pub n_gmail: u64,
    /// Distinct consumer services with accounts.
    pub n_consumer_services: u64,
    /// Has a DualSpace account.
    pub has_dualspace: bool,
    /// Has a Freelancer account.
    pub has_freelancer: bool,
    /// Apps installed when the study begins.
    pub n_initial_apps: u64,
    /// Mean daily installs.
    pub install_rate: f64,
    /// Mean daily uninstalls.
    pub uninstall_rate: f64,
    /// Mean daily app-open sessions.
    pub open_rate: f64,
    /// Fraction of the day the device reports snapshots.
    pub uptime: f64,
    /// Soft cap on concurrently installed apps — §6.3: "the number of
    /// installations is limited by the device resources". When the device
    /// is over capacity the agent uninstalls the excess, which keeps
    /// installed counts stationary despite heavy churn.
    pub capacity: u64,
}

impl DeviceProfile {
    /// Sample a profile.
    pub fn sample(params: &PersonaParams, rng: &mut impl Rng) -> Self {
        DeviceProfile {
            n_gmail: params.gmail_accounts.sample_count(rng).max(1),
            n_consumer_services: params.consumer_services.sample_count(rng),
            has_dualspace: rng.gen_bool(params.dualspace_prob),
            has_freelancer: rng.gen_bool(params.freelancer_prob),
            n_initial_apps: params.initial_apps.sample_count(rng).max(5),
            install_rate: params.daily_installs.sample(rng),
            uninstall_rate: params.daily_uninstalls.sample(rng),
            open_rate: params.daily_opens.sample(rng),
            uptime: params.uptime_fraction.sample(rng),
            capacity: 0, // filled in by DeviceAgent::new from n_initial_apps
        }
    }
}

/// One planned, timestamped action on a device.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineAction {
    /// When the action happens.
    pub time: SimTime,
    /// What happens.
    pub action: Action,
}

/// The kinds of planned actions.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Install an app from the catalog.
    Install {
        /// The app to install.
        app: AppId,
    },
    /// Uninstall an installed app.
    Uninstall {
        /// The app to remove.
        app: AppId,
    },
    /// Open an app in the foreground.
    Open {
        /// The app to open.
        app: AppId,
        /// Session length in seconds.
        secs: u64,
    },
    /// Force-stop an app.
    Stop {
        /// The app to stop.
        app: AppId,
    },
    /// Post a review from a device account.
    Review {
        /// The reviewed app.
        app: AppId,
        /// The posting account.
        account: AccountId,
        /// Its Google identity (for the store).
        google_id: GoogleId,
        /// The star rating.
        rating: Rating,
        /// The review text (empty when text simulation is off).
        text: String,
    },
    /// Screen goes dark (ends a session).
    ScreenOff,
}

/// A review scheduled for the future (min-heap by time).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingReview {
    time: SimTime,
    app: AppId,
    account: AccountId,
    google_id: GoogleId,
    stars: u8,
    text: String,
}

impl Ord for PendingReview {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on time.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.app.cmp(&self.app))
    }
}

impl PartialOrd for PendingReview {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The stateful behavioural agent of one device.
#[derive(Debug, Clone)]
pub struct DeviceAgent {
    /// Persona parameters (calibrated distributions).
    pub params: PersonaParams,
    /// The sampled latent profile.
    pub profile: DeviceProfile,
    /// Gmail accounts available for reviewing.
    gmail: Vec<(AccountId, GoogleId)>,
    /// Reviews scheduled but not yet posted.
    pending: BinaryHeap<PendingReview>,
    /// Apps this device has already reviewed-or-scheduled, to respect the
    /// one-review-per-(account, app) rule cheaply.
    promoted_done: Vec<AppId>,
    /// Reused working copy of `gmail` for per-job account shuffles, so
    /// scheduling a promo job stops cloning the account list. Holds the
    /// exact bytes the clone held, so the shuffle consumes identical RNG
    /// draws.
    account_scratch: Vec<(AccountId, GoogleId)>,
    /// Review-text generator. `None` (the default) leaves every review
    /// text empty; setting it is pure configuration — text is keyed, never
    /// drawn, so device RNG streams are byte-identical with text on or off.
    textgen: Option<crate::textgen::TextGen>,
}

impl DeviceAgent {
    /// Create an agent for a persona, sampling its profile.
    pub fn new(persona: Persona, rng: &mut impl Rng) -> Self {
        Self::with_params(PersonaParams::for_persona(persona), rng)
    }

    /// Create an agent from explicit (possibly modified) parameters — the
    /// entry point for the §9 evasion-strategy experiments.
    pub fn with_params(mut params: PersonaParams, rng: &mut impl Rng) -> Self {
        // Population heterogeneity: a slice of each cohort sits near the
        // class boundary, which is what keeps the §8 device classifier's
        // error rate non-zero (as in the paper's Table 2).
        if params.persona.is_worker() && rng.gen_bool(params.novice_prob) {
            // Novice worker: a personal device with a trickle of ASO work.
            params.gmail_accounts = crate::dist::ClampedLogNormal::new(3.0, 0.5, 1.0, 8.0);
            params.promo_install_fraction *= 0.3;
            params.promo_accounts_per_app = crate::dist::ClampedLogNormal::new(1.5, 0.4, 1.0, 3.0);
            params.daily_installs.median = (params.daily_installs.median * 0.5).max(0.5);
            params.promo_open_prob = 0.6; // still curious about the apps
        }
        if params.persona == Persona::Regular && rng.gen_bool(params.enthusiast_prob) {
            // Review enthusiast: posts an order of magnitude more often.
            params.personal_review_prob = 0.25;
            params.gmail_accounts = crate::dist::ClampedLogNormal::new(4.0, 0.4, 1.0, 9.0);
        }
        let mut profile = DeviceProfile::sample(&params, rng);
        profile.capacity =
            (profile.n_initial_apps as f64 * rng.gen_range(1.05..1.30)).round() as u64;
        DeviceAgent {
            params,
            profile,
            gmail: Vec::new(),
            pending: BinaryHeap::new(),
            promoted_done: Vec::new(),
            account_scratch: Vec::new(),
            textgen: None,
        }
    }

    /// Enable (or disable) deterministic review-text generation. Consumes
    /// no RNG draws — safe to call between [`DeviceAgent::with_params`]
    /// and [`DeviceAgent::setup_history`] without perturbing any stream.
    pub fn set_textgen(&mut self, textgen: Option<crate::textgen::TextGen>) {
        self.textgen = textgen;
    }

    /// The base Google identity keying this device's promo template (its
    /// first Gmail account; workers write one text per app and post light
    /// edits of it from every account).
    fn text_base(&self) -> u64 {
        self.gmail.first().map(|&(_, g)| g.raw()).unwrap_or(0)
    }

    /// Worker-promo review text for `app` posted by `google_id`.
    fn promo_text(&self, app: AppId, google_id: GoogleId, rating: Rating) -> String {
        match &self.textgen {
            Some(g) => g.worker_promo(
                self.text_base(),
                u64::from(app.raw()),
                google_id.raw(),
                rating,
            ),
            None => String::new(),
        }
    }

    /// Personal-tier review text for `app` posted by `google_id`.
    fn personal_text(&self, app: AppId, google_id: GoogleId, rating: Rating) -> String {
        match &self.textgen {
            Some(g) => g.personal(google_id.raw(), u64::from(app.raw()), rating),
            None => String::new(),
        }
    }

    /// The agent's persona.
    pub fn persona(&self) -> Persona {
        self.params.persona
    }

    /// The device's Gmail identities (populated by `setup_history`).
    pub fn gmail_identities(&self) -> &[(AccountId, GoogleId)] {
        &self.gmail
    }

    /// Number of reviews scheduled but not yet posted.
    pub fn pending_reviews(&self) -> usize {
        self.pending.len()
    }

    /// Star rating for a promotion review: overwhelmingly 5★ (§2).
    fn promo_rating(rng: &mut impl Rng) -> Rating {
        Rating::new(if rng.gen_bool(0.85) { 5 } else { 4 }).expect("valid stars")
    }

    /// Star rating for a personal review: skewed positive like real stores.
    fn personal_rating(rng: &mut impl Rng) -> Rating {
        let r = rng.gen::<f64>();
        let stars = if r < 0.45 {
            5
        } else if r < 0.70 {
            4
        } else if r < 0.83 {
            3
        } else if r < 0.93 {
            1
        } else {
            2
        };
        Rating::new(stars).expect("valid stars")
    }

    /// Grant policy for a freshly installed app: workers mostly grant all
    /// (five interviewed workers did); regular users deny some dangerous
    /// permissions (§6.3 "App Permissions").
    fn permission_profile(
        &self,
        requested: &[Permission],
        rng: &mut impl Rng,
    ) -> PermissionProfile {
        let deny_prob = match self.params.persona {
            Persona::Regular => 0.25,
            Persona::OrganicWorker => 0.10,
            Persona::DedicatedWorker => 0.05,
        };
        let mut profile = PermissionProfile {
            requested: requested.to_vec(),
            granted: Vec::new(),
            denied: Vec::new(),
        };
        for p in requested.iter().filter(|p| p.is_dangerous()) {
            if rng.gen_bool(deny_prob) {
                profile.denied.push(*p);
            } else {
                profile.granted.push(*p);
            }
        }
        profile
    }

    /// Pick an app to install: promoted with the persona's promo fraction,
    /// otherwise a popularity-weighted consumer app (or occasionally an
    /// off-store app).
    fn pick_install(&self, catalog: &AppCatalog, rng: &mut impl Rng) -> AppId {
        if rng.gen_bool(self.params.promo_install_fraction) && !catalog.promoted_apps().is_empty() {
            *catalog.promoted_apps().choose(rng).expect("non-empty")
        } else if rng.gen_bool(self.params.off_store_prob) && !catalog.off_store_apps().is_empty() {
            *catalog.off_store_apps().choose(rng).expect("non-empty")
        } else {
            match self.params.mainstream_only {
                Some(k) => catalog.sample_mainstream_app(rng, k),
                None => catalog.sample_consumer_app(rng),
            }
        }
    }

    /// Number of device accounts used to review one promoted app.
    ///
    /// Scales with the device's account wealth: a worker with 100+ Gmail
    /// accounts posts the same app from many more of them, which is what
    /// produces the paper's heavy tail (11 devices with > 1,000 total
    /// reviews, Figure 6).
    fn accounts_per_job(&self, rng: &mut impl Rng) -> usize {
        let base = self.params.promo_accounts_per_app.sample_count(rng) as f64;
        let wealth = (self.gmail.len() as f64 / 15.0).sqrt().max(1.0);
        ((base * wealth).round() as usize).clamp(1, self.gmail.len().max(1))
    }

    /// Schedule reviews for a newly installed promoted app.
    fn schedule_promo_reviews(
        &mut self,
        app: AppId,
        install_time: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
    ) {
        if self.promoted_done.contains(&app) {
            return;
        }
        self.promoted_done.push(app);
        // Some jobs are install-only retention work: no review at all.
        if !rng.gen_bool(self.params.promo_job_review_prob) {
            return;
        }
        let k = self.accounts_per_job(rng);
        self.account_scratch.clear();
        self.account_scratch.extend_from_slice(&self.gmail);
        self.account_scratch.shuffle(rng);
        for idx in 0..k.min(self.account_scratch.len()) {
            let (account, google_id) = self.account_scratch[idx];
            if !rng.gen_bool(self.params.promo_review_prob) {
                continue;
            }
            let delay_days = self.params.promo_review_delay.sample_days(rng);
            let t =
                install_time.saturating_add(SimDuration::from_secs((delay_days * 86_400.0) as u64));
            if t <= horizon {
                let rating = Self::promo_rating(rng);
                let text = self.promo_text(app, google_id, rating);
                self.pending.push(PendingReview {
                    time: t,
                    app,
                    account,
                    google_id,
                    stars: rating.stars(),
                    text,
                });
            }
        }
    }

    /// Maybe schedule a personal review for a personally used app.
    fn maybe_schedule_personal_review(
        &mut self,
        app: AppId,
        install_time: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
    ) {
        if !rng.gen_bool(self.params.personal_review_prob) || self.gmail.is_empty() {
            return;
        }
        let &(account, google_id) = self.gmail.first().expect("non-empty");
        let delay_days = self.params.personal_review_delay.sample_days(rng);
        let t = install_time.saturating_add(SimDuration::from_secs((delay_days * 86_400.0) as u64));
        if t <= horizon {
            let rating = Self::personal_rating(rng);
            let text = self.personal_text(app, google_id, rating);
            self.pending.push(PendingReview {
                time: t,
                app,
                account,
                google_id,
                stars: rating.stars(),
                text,
            });
        }
    }

    /// Populate accounts, the installed-app base, usage history and
    /// historical reviews. `now` is the study start; history extends over
    /// `[0, now)`. `horizon` bounds scheduled future reviews (study end).
    #[allow(clippy::too_many_arguments)]
    pub fn setup_history(
        &mut self,
        device: &mut racket_device::Device,
        catalog: &AppCatalog,
        store: &mut ReviewStore,
        directory: &mut GoogleIdDirectory,
        ids: &mut IdAllocator,
        now: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
    ) {
        // ---- accounts -----------------------------------------------------
        for _ in 0..self.profile.n_gmail {
            let (account, google_id) = ids.next_account();
            directory.register(account, google_id);
            device.register_account(RegisteredAccount::gmail(account, google_id), SimTime::EPOCH);
            self.gmail.push((account, google_id));
        }
        let mut services: Vec<AccountService> = AccountService::consumer_services().to_vec();
        services.shuffle(rng);
        for service in services
            .into_iter()
            .take(self.profile.n_consumer_services as usize)
        {
            let (account, _) = ids.next_account();
            device.register_account(
                RegisteredAccount::non_gmail(account, service),
                SimTime::EPOCH,
            );
        }
        if self.profile.has_dualspace {
            let (account, _) = ids.next_account();
            device.register_account(
                RegisteredAccount::non_gmail(account, AccountService::DualSpace),
                SimTime::EPOCH,
            );
        }
        if self.profile.has_freelancer {
            let (account, _) = ids.next_account();
            device.register_account(
                RegisteredAccount::non_gmail(account, AccountService::Freelancer),
                SimTime::EPOCH,
            );
        }

        // ---- preinstalled system apps --------------------------------------
        for &app in catalog.system_apps() {
            let meta = catalog.app(app);
            device.preinstall_app(
                app,
                PermissionProfile::grant_all(meta.permissions.clone()),
                meta.apk_hash,
            );
            // Regular users live in their system apps (store, mail, browser).
            let open_days = match self.params.persona {
                Persona::Regular => 5,
                Persona::OrganicWorker => 3,
                Persona::DedicatedWorker => 1,
            };
            for d in 0..open_days {
                if rng.gen_bool(0.6) {
                    let t = now.saturating_since(SimTime::from_days(d + 1));
                    let t = SimTime::from_secs(t.as_secs() + rng.gen_range(0..86_400u64));
                    device.open_app(app, t, rng.gen_range(30..600));
                }
            }
        }

        // ---- installed user apps -------------------------------------------
        let history_secs = now.as_secs().max(86_400);
        for _ in 0..self.profile.n_initial_apps {
            let app = self.pick_install(catalog, rng);
            if device.is_installed(app) {
                continue;
            }
            let meta = catalog.app(app);
            let install_time = SimTime::from_secs(rng.gen_range(0..history_secs));
            let profile = self.permission_profile(&meta.permissions, rng);
            device.install_app(app, install_time, profile, meta.apk_hash);

            let is_promo = catalog.promoted_apps().contains(&app);
            let open_prob = if is_promo {
                self.params.promo_open_prob
            } else {
                0.85
            };
            if rng.gen_bool(open_prob) {
                // Opened on one to several days since installation.
                let days_since = now.saturating_since(install_time).as_days().max(1.0);
                let n_days = if is_promo {
                    1
                } else {
                    rng.gen_range(1..=(days_since as u64).clamp(1, 6))
                };
                for _ in 0..n_days {
                    let t = SimTime::from_secs(
                        install_time.as_secs()
                            + rng.gen_range(0..(history_secs - install_time.as_secs()).max(1)),
                    );
                    device.open_app(app, t, rng.gen_range(20..900));
                }
            }
            if is_promo {
                self.schedule_promo_reviews(app, install_time, horizon, rng);
                if rng.gen_bool(self.params.promo_stop_prob) {
                    device.stop_app(app, now);
                }
            } else {
                self.maybe_schedule_personal_review(app, install_time, horizon, rng);
            }
        }

        // ---- past promotion jobs (apps since uninstalled) -------------------
        if self.params.persona.is_worker() && !catalog.promoted_apps().is_empty() {
            // Roughly: promo installs per day × history days × the fraction
            // not retained on the device.
            // Job flow is not constant over a device's lifetime; bound the
            // effective window so long histories don't inflate totals.
            let job_window_days = now.as_days().min(90.0);
            let expected_jobs = self.profile.install_rate
                * self.params.promo_install_fraction
                * job_window_days
                * 0.065;
            let n_jobs = poisson(rng, expected_jobs).min(400);
            for _ in 0..n_jobs {
                let app = *catalog.promoted_apps().choose(rng).expect("non-empty");
                if self.promoted_done.contains(&app) {
                    continue;
                }
                self.promoted_done.push(app);
                if !rng.gen_bool(self.params.promo_job_review_prob) {
                    continue;
                }
                let k = self.accounts_per_job(rng);
                let t_install = SimTime::from_secs(rng.gen_range(0..history_secs));
                self.account_scratch.clear();
                self.account_scratch.extend_from_slice(&self.gmail);
                self.account_scratch.shuffle(rng);
                for idx in 0..k.min(self.account_scratch.len()) {
                    let (account, google_id) = self.account_scratch[idx];
                    if !rng.gen_bool(self.params.promo_review_prob) {
                        continue;
                    }
                    let delay = self.params.promo_review_delay.sample_days(rng);
                    let t =
                        t_install.saturating_add(SimDuration::from_secs((delay * 86_400.0) as u64));
                    let t = t.min(now); // posted in the past
                    store.post(Review::new(app, google_id, t, Self::promo_rating(rng)));
                    let rating = Self::promo_rating(rng);
                    let text = self.promo_text(app, google_id, rating);
                    device.record_review(app, account, google_id, rating, t, &text);
                }
            }
        }

        // Flush reviews that fell due during history into the store now.
        self.flush_due_reviews(device, store, now);
    }

    /// Post every pending review due at or before `now` directly (used for
    /// the history phase; during the study the planner emits them as
    /// timeline actions instead).
    pub fn flush_due_reviews(
        &mut self,
        device: &mut racket_device::Device,
        store: &mut ReviewStore,
        now: SimTime,
    ) {
        while let Some(p) = self.pending.peek() {
            if p.time > now {
                break;
            }
            let p = self.pending.pop().expect("peeked");
            let rating = Rating::new(p.stars).expect("valid stars");
            store.post(Review::new(p.app, p.google_id, p.time, rating));
            device.record_review(p.app, p.account, p.google_id, rating, p.time, &p.text);
        }
    }

    /// Plan one day `[day_start, day_start + 1d)` of actions against the
    /// device's current state. Install actions schedule their future
    /// reviews; reviews already due today are emitted as actions.
    ///
    /// Convenience wrapper over [`DeviceAgent::plan_day_into`] with a
    /// throwaway [`crate::lane::LaneScratch`]; the study driver holds a
    /// persistent scratch per lane instead. Both go through the same
    /// planning code, so their RNG draws and output are identical.
    pub fn plan_day(
        &mut self,
        device: &racket_device::Device,
        catalog: &AppCatalog,
        day_start: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
    ) -> Vec<TimelineAction> {
        let mut scratch = crate::lane::LaneScratch::new();
        scratch.seed_indexes(device, catalog, self.params.persona);
        self.plan_day_into(device, catalog, day_start, horizon, rng, &mut scratch);
        scratch.actions
    }

    /// [`DeviceAgent::plan_day`] writing into caller-owned scratch: the
    /// plan lands in `scratch.actions` (cleared first), the uninstall and
    /// open pools are read from `scratch`'s incremental indexes instead of
    /// being rebuilt from the device, and `scratch.shuffle` carries the
    /// uninstall shuffle. Steady state allocates nothing.
    pub fn plan_day_into(
        &mut self,
        device: &racket_device::Device,
        catalog: &AppCatalog,
        day_start: SimTime,
        horizon: SimTime,
        rng: &mut impl Rng,
        scratch: &mut crate::lane::LaneScratch,
    ) {
        scratch.actions.clear();
        let actions = &mut scratch.actions;
        let day_secs = 86_400u64;
        fn t_in_day(day_start: SimTime, day_secs: u64, rng: &mut impl Rng) -> SimTime {
            SimTime::from_secs(day_start.as_secs() + rng.gen_range(0..day_secs))
        }

        // Installs.
        let n_installs = poisson(rng, self.profile.install_rate);
        for _ in 0..n_installs {
            let app = self.pick_install(catalog, rng);
            if device.is_installed(app) {
                continue;
            }
            let t = t_in_day(day_start, day_secs, rng);
            actions.push(TimelineAction {
                time: t,
                action: Action::Install { app },
            });
            let is_promo = catalog.promoted_apps().contains(&app);
            if is_promo {
                self.schedule_promo_reviews(app, t, horizon, rng);
                if rng.gen_bool(self.params.promo_open_prob) {
                    let t_open = t.saturating_add(SimDuration::from_secs(rng.gen_range(60..3_600)));
                    actions.push(TimelineAction {
                        time: t_open,
                        action: Action::Open {
                            app,
                            secs: rng.gen_range(15..120),
                        },
                    });
                }
                if rng.gen_bool(self.params.promo_stop_prob) {
                    let t_stop = t.saturating_add(SimDuration::from_hours(rng.gen_range(2..20)));
                    actions.push(TimelineAction {
                        time: t_stop,
                        action: Action::Stop { app },
                    });
                }
            } else {
                self.maybe_schedule_personal_review(app, t, horizon, rng);
                if rng.gen_bool(0.8) {
                    let t_open = t.saturating_add(SimDuration::from_secs(rng.gen_range(30..7_200)));
                    actions.push(TimelineAction {
                        time: t_open,
                        action: Action::Open {
                            app,
                            secs: rng.gen_range(30..900),
                        },
                    });
                }
            }
        }

        // Uninstalls of current user apps: the scratch's incremental
        // removable index holds the same ascending app set the old
        // per-day `filter().collect()` rebuild produced, and the shuffle
        // runs on a working copy so the index stays canonical.
        // Base uninstall flow plus capacity pressure: anything over the
        // device's soft capacity is shed the same day.
        let over_capacity = (device.installed_count() as u64 + n_installs)
            .saturating_sub(self.profile.capacity.max(10));
        let n_uninstalls = (poisson(rng, self.profile.uninstall_rate) + over_capacity)
            .min(scratch.removable.len() as u64);
        scratch.shuffle.clear();
        scratch.shuffle.extend_from_slice(&scratch.removable);
        scratch.shuffle.shuffle(rng);
        for idx in 0..n_uninstalls as usize {
            let app = scratch.shuffle[idx];
            actions.push(TimelineAction {
                time: t_in_day(day_start, day_secs, rng),
                action: Action::Uninstall { app },
            });
        }

        // App-open sessions on already-installed apps (personal usage),
        // drawn from the incremental openable index (same content and
        // order as the rebuild it replaces, so `choose` draws match).
        if !scratch.openable.is_empty() {
            let n_opens = poisson(rng, self.profile.open_rate);
            for _ in 0..n_opens {
                let app = *scratch.openable.choose(rng).expect("non-empty");
                let t = t_in_day(day_start, day_secs, rng);
                let secs = rng.gen_range(20..1_200);
                actions.push(TimelineAction {
                    time: t,
                    action: Action::Open { app, secs },
                });
                actions.push(TimelineAction {
                    time: t.saturating_add(SimDuration::from_secs(secs)),
                    action: Action::ScreenOff,
                });
            }
        }

        // Reviews falling due today.
        let day_end = day_start + SimDuration::from_days(1);
        while let Some(p) = self.pending.peek() {
            if p.time >= day_end {
                break;
            }
            let p = self.pending.pop().expect("peeked");
            let time = p.time.max(day_start);
            actions.push(TimelineAction {
                time,
                action: Action::Review {
                    app: p.app,
                    account: p.account,
                    google_id: p.google_id,
                    rating: Rating::new(p.stars).expect("valid stars"),
                    text: p.text,
                },
            });
        }

        actions.sort_by_key(|a| a.time);
    }
}

/// Apply one action to a device (and the review store when it's a review).
///
/// The study driver replays planned actions through this single entry point
/// so ground truth (device event log), the store and the agent stay
/// consistent.
pub fn apply_action(
    device: &mut racket_device::Device,
    store: &mut ReviewStore,
    catalog: &AppCatalog,
    ta: &TimelineAction,
    rng: &mut impl Rng,
) {
    let mut reviews = Vec::new();
    apply_action_collecting(device, &mut reviews, catalog, ta, rng);
    for review in reviews {
        store.post(review);
    }
}

/// [`apply_action`] with the store mutation deferred: posted reviews are
/// pushed to `reviews` instead of a [`ReviewStore`].
///
/// This is the per-device half of the parallel study driver's contract —
/// every other effect of an action is local to `device`, so worker threads
/// apply actions independently and the driver posts the collected reviews
/// serially, in device order, keeping the store deterministic.
pub fn apply_action_collecting(
    device: &mut racket_device::Device,
    reviews: &mut Vec<Review>,
    catalog: &AppCatalog,
    ta: &TimelineAction,
    rng: &mut impl Rng,
) {
    match &ta.action {
        Action::Install { app } => {
            let meta = catalog.app(*app);
            // Grant-all at replay; the persona-specific deny policy was
            // already exercised for the history base, and §7.1 permission
            // features mix both.
            let profile = if rng.gen_bool(0.85) {
                PermissionProfile::grant_all(meta.permissions.clone())
            } else {
                let mut p = PermissionProfile::grant_all(meta.permissions.clone());
                if let Some(d) = p.granted.pop() {
                    p.denied.push(d);
                }
                p
            };
            device.install_app(*app, ta.time, profile, meta.apk_hash);
        }
        Action::Uninstall { app } => {
            device.uninstall_app(*app, ta.time);
        }
        Action::Open { app, secs } => {
            device.open_app(*app, ta.time, *secs);
        }
        Action::Stop { app } => {
            device.stop_app(*app, ta.time);
        }
        Action::Review {
            app,
            account,
            google_id,
            rating,
            text,
        } => {
            reviews.push(Review::new(*app, *google_id, ta.time, *rating));
            device.record_review(*app, *account, *google_id, *rating, ta.time, text);
        }
        Action::ScreenOff => {
            device.set_screen(false, ta.time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_device::{Device, DeviceModel};
    use racket_playstore::CatalogConfig;
    use racket_types::{AndroidId, DeviceId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn harness() -> (
        AppCatalog,
        ReviewStore,
        GoogleIdDirectory,
        IdAllocator,
        StdRng,
    ) {
        (
            AppCatalog::generate(&CatalogConfig::default()),
            ReviewStore::new(),
            GoogleIdDirectory::new(),
            IdAllocator::default(),
            StdRng::seed_from_u64(99),
        )
    }

    fn setup(persona: Persona) -> (Device, DeviceAgent, AppCatalog, ReviewStore) {
        let (catalog, mut store, mut dir, mut ids, mut rng) = harness();
        let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(1));
        let mut agent = DeviceAgent::new(persona, &mut rng);
        let now = SimTime::from_days(180);
        let horizon = SimTime::from_days(195);
        agent.setup_history(
            &mut device,
            &catalog,
            &mut store,
            &mut dir,
            &mut ids,
            now,
            horizon,
            &mut rng,
        );
        (device, agent, catalog, store)
    }

    #[test]
    fn regular_history_shape() {
        let (device, agent, catalog, store) = setup(Persona::Regular);
        assert!(device.gmail_accounts().count() <= 10);
        assert!(device.installed_count() >= 15);
        // Regular devices post few reviews.
        let total: usize = agent
            .gmail_identities()
            .iter()
            .map(|&(_, g)| store.reviews_by(g).len())
            .sum();
        assert!(total <= 40, "regular device posted {total} reviews");
        // No promoted apps get installed by regular users.
        let promo_installed = device
            .installed_apps()
            .filter(|a| catalog.promoted_apps().contains(&a.app))
            .count();
        assert_eq!(promo_installed, 0);
    }

    #[test]
    fn dedicated_worker_history_shape() {
        let (device, agent, catalog, store) = setup(Persona::DedicatedWorker);
        assert!(device.gmail_accounts().count() >= 5);
        // Workers accumulate many reviews from their accounts.
        let total: usize = agent
            .gmail_identities()
            .iter()
            .map(|&(_, g)| store.reviews_by(g).len())
            .sum();
        assert!(total > 30, "worker device only posted {total} reviews");
        // Promoted apps are installed.
        let promo_installed = device
            .installed_apps()
            .filter(|a| catalog.promoted_apps().contains(&a.app))
            .count();
        assert!(promo_installed > 0);
        // Stopped apps accumulate (never-opened promos + force stops).
        assert!(device.stopped_apps().len() >= 5);
    }

    #[test]
    fn plan_day_produces_sorted_feasible_actions() {
        let (device, mut agent, catalog, _) = setup(Persona::OrganicWorker);
        let mut rng = StdRng::seed_from_u64(3);
        let day = SimTime::from_days(180);
        let actions = agent.plan_day(&device, &catalog, day, SimTime::from_days(195), &mut rng);
        for w in actions.windows(2) {
            assert!(w[0].time <= w[1].time, "actions sorted by time");
        }
        for a in &actions {
            assert!(a.time >= day, "no action before the planned day");
        }
    }

    #[test]
    fn replaying_actions_updates_device_and_store() {
        let (mut device, mut agent, catalog, mut store) = setup(Persona::DedicatedWorker);
        let mut rng = StdRng::seed_from_u64(4);
        let before_reviews = store.total_reviews();
        let before_installs = device.churn_totals().0;
        for day in 180..184 {
            let day_start = SimTime::from_days(day);
            let actions = agent.plan_day(
                &device,
                &catalog,
                day_start,
                SimTime::from_days(195),
                &mut rng,
            );
            for ta in &actions {
                apply_action(&mut device, &mut store, &catalog, ta, &mut rng);
            }
        }
        assert!(
            device.churn_totals().0 > before_installs,
            "installs happened"
        );
        assert!(store.total_reviews() >= before_reviews);
    }

    #[test]
    fn pending_reviews_respect_one_per_app() {
        let (_, mut agent, _, _) = setup(Persona::DedicatedWorker);
        let mut rng = StdRng::seed_from_u64(5);
        let n_before = agent.pending_reviews();
        // Re-scheduling the same app is a no-op.
        let app = agent.promoted_done.first().copied();
        if let Some(app) = app {
            agent.schedule_promo_reviews(
                app,
                SimTime::from_days(180),
                SimTime::from_days(195),
                &mut rng,
            );
            assert_eq!(agent.pending_reviews(), n_before);
        }
    }

    #[test]
    fn id_allocator_unique() {
        let mut ids = IdAllocator::default();
        let (a1, g1) = ids.next_account();
        let (a2, g2) = ids.next_account();
        assert_ne!(a1, a2);
        assert_ne!(g1, g2);
    }
}
