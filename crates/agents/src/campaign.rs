//! Coordinated ASO campaigns: deterministic lockstep install/review jobs.
//!
//! §7.3 of the paper infers coordination from devices that act on the same
//! promoted apps at the same times. The fleet reproduces that ground truth
//! with explicit [`CampaignSpec`] objects: an organizer picks a target-app set
//! from the promoted catalog slice, hires a worker pool from the promotion
//! personas (the device indices in `[n_regular, n_devices)`), and schedules
//! correlated install + review *directives* under one of three
//! [`PacingStrategy`] profiles. Detection difficulty is monotone in the
//! pacing: `Burst` is near-perfect lockstep, `Drip` spreads the same work
//! over days, `Stealth` adds per-worker jitter and dropout.
//!
//! Determinism rides the fleet RNG-stream contract: campaign `c` draws every
//! decision from `stream_seed(config.seed ^ CAMPAIGN_STREAM_SALT, c)`, so
//! the plan is a pure function of [`FleetConfig`] — independent of thread
//! count, and byte-identical across the direct / wire / async delivery
//! paths (pinned by `tests/campaign_equivalence.rs`).

use crate::agent::{Action, TimelineAction};
use crate::fleet::{stream_seed, FleetConfig};
use racket_playstore::AppCatalog;
use racket_types::{AccountId, AppId, GoogleId, Rating, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Salt separating the campaign RNG stream family from device streams
/// (`stream_seed(seed, i)`) and the study's driver/fault families.
pub const CAMPAIGN_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How a campaign paces its correlated actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacingStrategy {
    /// All workers act inside one ~3 h window on the campaign's anchor
    /// day — maximal temporal overlap, the easiest case for a lockstep
    /// detector.
    Burst,
    /// The organizer staggers targets across days 0–2, one schedule slot
    /// per app, and workers follow it with up to 12 h of slack — apps
    /// stay correlated but each shared time bucket becomes a coin flip,
    /// the intermediate row of the EXPERIMENTS.md table.
    Drip,
    /// Per-app slots across days 0–3, up to 48 h of per-worker jitter,
    /// ~25% per-job dropout and a lower review rate — the evasion end of
    /// the recall/precision table.
    Stealth,
}

/// Fleet-level campaign knobs. The default runs **zero** campaigns, which
/// keeps every pre-existing study pin (fingerprints, calibration bands,
/// goldens) byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Number of independent campaigns to schedule.
    pub n_campaigns: usize,
    /// Workers hired per campaign (clamped to the promotion-persona pool).
    pub workers_per_campaign: usize,
    /// Distinct promoted target apps per campaign (clamped to the catalog's
    /// promoted slice).
    pub apps_per_campaign: usize,
    /// Pacing profile shared by all campaigns in this fleet.
    pub pacing: PacingStrategy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_campaigns: 0,
            workers_per_campaign: 8,
            apps_per_campaign: 4,
            pacing: PacingStrategy::Burst,
        }
    }
}

impl CampaignConfig {
    /// A config running `n` campaigns with the given pacing and the default
    /// pool sizes.
    pub fn with(n: usize, pacing: PacingStrategy) -> Self {
        CampaignConfig {
            n_campaigns: n,
            pacing,
            ..CampaignConfig::default()
        }
    }
}

/// One scheduled install (+ optional review) job for one worker device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignDirective {
    /// Index of the campaign that issued the job.
    pub campaign: u32,
    /// The target app.
    pub app: AppId,
    /// When the worker installs (re-installs are fine: the collector
    /// reports a changed install time as a fresh install event).
    pub install_at: SimTime,
    /// When the worker posts the paid review, if the job includes one.
    pub review_at: Option<SimTime>,
    /// Which of the worker's Gmail identities posts (index modulo the
    /// device's identity count).
    pub account_slot: u32,
    /// The bought star rating.
    pub stars: u8,
}

/// Ground truth for one campaign: who organized it, which devices worked
/// it, which apps it targeted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign index (0-based).
    pub index: u32,
    /// Synthetic organizer handle (flavour only; never observed).
    pub organizer: u64,
    /// Target apps, ascending.
    pub targets: Vec<AppId>,
    /// Worker device indices into `Fleet::devices`, ascending.
    pub workers: Vec<usize>,
    /// Pacing the campaign ran under.
    pub pacing: PacingStrategy,
}

/// The full campaign schedule for a fleet: ground-truth specs plus the
/// per-device directive lists.
#[derive(Debug, Clone, Default)]
pub struct CampaignPlan {
    /// Ground-truth campaign descriptions, by index.
    pub specs: Vec<CampaignSpec>,
    /// `directives[i]` = jobs for fleet device `i`, sorted by install time.
    pub directives: Vec<Vec<CampaignDirective>>,
}

impl CampaignPlan {
    /// Build the deterministic campaign schedule for `config` against the
    /// generated catalog. Pure function of `(config, catalog)`; the catalog
    /// is itself a pure function of `config.catalog`.
    pub fn generate(config: &FleetConfig, catalog: &AppCatalog) -> CampaignPlan {
        let cc = config.campaigns;
        let n_devices = config.n_devices();
        let mut plan = CampaignPlan {
            specs: Vec::with_capacity(cc.n_campaigns),
            directives: vec![Vec::new(); n_devices],
        };
        if cc.n_campaigns == 0 {
            return plan;
        }
        let pool: Vec<usize> = (config.n_regular..n_devices).collect();
        let promoted = catalog.promoted_apps();
        assert!(
            !pool.is_empty() && !promoted.is_empty(),
            "campaigns need promotion devices and promoted apps"
        );
        let study_start = config.study_start();

        for c in 0..cc.n_campaigns {
            let mut rng =
                StdRng::seed_from_u64(stream_seed(config.seed ^ CAMPAIGN_STREAM_SALT, c as u64));

            let mut targets = promoted.to_vec();
            targets.shuffle(&mut rng);
            targets.truncate(cc.apps_per_campaign.clamp(1, targets.len()));
            targets.sort();

            let mut workers = pool.clone();
            workers.shuffle(&mut rng);
            workers.truncate(cc.workers_per_campaign.clamp(1, workers.len()));
            workers.sort_unstable();

            // Per-app schedule anchors, aligned to 6 h shingle-bucket
            // boundaries (the study start is day-aligned). Burst shares a
            // single anchor inside days 0–1, so every worker's ≥ 2-day
            // monitoring window covers it; drip/stealth stagger each
            // target across days 0–2 / 0–3 on its own slot.
            let campaign_slot = rng.gen_range(0..7u64); // 6 h slots, days 0–1
            let anchors: Vec<SimTime> = targets
                .iter()
                .map(|_| {
                    let slot = match cc.pacing {
                        PacingStrategy::Burst => campaign_slot,
                        PacingStrategy::Drip => rng.gen_range(0..9u64), // days 0–2
                        PacingStrategy::Stealth => rng.gen_range(0..12u64), // days 0–3
                    };
                    study_start + SimDuration::from_hours(6 * slot)
                })
                .collect();

            for &w in &workers {
                for (&app, &anchor) in targets.iter().zip(&anchors) {
                    let (jitter_secs, review, review_delay) = match cc.pacing {
                        // < 3 h of slack: every worker lands in the
                        // anchor's bucket.
                        PacingStrategy::Burst => (
                            rng.gen_range(0..3 * 3600),
                            rng.gen_bool(0.9),
                            SimDuration::from_secs(rng.gen_range(3600..20 * 3600)),
                        ),
                        // Up to 12 h of slack: a shared bucket per app is
                        // a coin flip between two workers.
                        PacingStrategy::Drip => (
                            rng.gen_range(0..12 * 3600),
                            rng.gen_bool(0.8),
                            SimDuration::from_secs(rng.gen_range(6 * 3600..2 * 86_400)),
                        ),
                        // Up to 48 h of slack: bucket collisions are rare.
                        PacingStrategy::Stealth => (
                            rng.gen_range(0..48 * 3600),
                            rng.gen_bool(0.6),
                            SimDuration::from_secs(rng.gen_range(86_400..4 * 86_400)),
                        ),
                    };
                    let install_at = anchor + SimDuration::from_secs(jitter_secs);
                    // Stealth dropout: the worker skips this job entirely.
                    if cc.pacing == PacingStrategy::Stealth && rng.gen_bool(0.25) {
                        continue;
                    }
                    plan.directives[w].push(CampaignDirective {
                        campaign: c as u32,
                        app,
                        install_at,
                        review_at: review.then(|| install_at + review_delay),
                        account_slot: rng.gen_range(0..16),
                        stars: if rng.gen_bool(0.85) { 5 } else { 4 },
                    });
                }
            }

            plan.specs.push(CampaignSpec {
                index: c as u32,
                organizer: rng.gen(),
                targets,
                workers,
                pacing: cc.pacing,
            });
        }
        for jobs in &mut plan.directives {
            jobs.sort_by_key(|d| (d.install_at, d.app));
        }
        plan
    }
}

/// The rating object for a directive (`stars` is always 4 or 5).
pub fn directive_rating(d: &CampaignDirective) -> Rating {
    Rating::new(d.stars).expect("campaign stars are valid")
}

/// Expand a device's directive list into timeline actions, stably sorted
/// by time — the lane-setup half of the study driver's directive cursor.
///
/// Each directive yields an install action and (when the job includes a
/// review and the device has Gmail identities) a review action from the
/// identity at `account_slot` modulo the identity count. Expansion order
/// follows the directive list, so after the stable time sort, actions at
/// equal times keep directive order — exactly what the per-day scan this
/// replaces produced. The plan is sliced per day by a cursor; merging a
/// slice into a day's organic actions and stable-sorting reproduces the
/// old scan-every-day injection byte for byte, RNG-free on both sides.
///
/// `textgen` supplies the campaign-tier review text (the organizer's
/// template, shared by every hired worker — ARCHITECTURE.md §13); `None`
/// leaves texts empty. Either way expansion stays RNG-free.
pub fn expand_directives(
    directives: &[CampaignDirective],
    idents: &[(AccountId, GoogleId)],
    textgen: Option<&crate::textgen::TextGen>,
) -> Vec<TimelineAction> {
    let mut plan = Vec::with_capacity(directives.len() * 2);
    for d in directives {
        plan.push(TimelineAction {
            time: d.install_at,
            action: Action::Install { app: d.app },
        });
        if let Some(at) = d.review_at {
            if let Some(&(account, google_id)) =
                idents.get(d.account_slot as usize % idents.len().max(1))
            {
                let rating = directive_rating(d);
                plan.push(TimelineAction {
                    time: at,
                    action: Action::Review {
                        app: d.app,
                        account,
                        google_id,
                        rating,
                        text: textgen
                            .map(|g| {
                                g.campaign(
                                    d.campaign,
                                    u64::from(d.app.raw()),
                                    d.account_slot,
                                    rating,
                                )
                            })
                            .unwrap_or_default(),
                    },
                });
            }
        }
    }
    plan.sort_by_key(|ta| ta.time);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_playstore::AppCatalog;

    fn plan_for(cc: CampaignConfig) -> (FleetConfig, CampaignPlan) {
        let mut config = FleetConfig::test_scale();
        config.campaigns = cc;
        let catalog = AppCatalog::generate(&config.catalog);
        let plan = CampaignPlan::generate(&config, &catalog);
        (config, plan)
    }

    #[test]
    fn default_config_schedules_nothing() {
        let (_, plan) = plan_for(CampaignConfig::default());
        assert!(plan.specs.is_empty());
        assert!(plan.directives.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn plan_is_deterministic_and_workers_are_promoters() {
        let cc = CampaignConfig::with(2, PacingStrategy::Burst);
        let (config, plan) = plan_for(cc);
        let (_, plan2) = plan_for(cc);
        assert_eq!(plan.specs, plan2.specs);
        assert_eq!(plan.directives, plan2.directives);
        assert_eq!(plan.specs.len(), 2);
        for spec in &plan.specs {
            assert!(spec.workers.iter().all(|&w| w >= config.n_regular));
            assert!(spec.workers.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(spec.targets.len(), cc.apps_per_campaign);
        }
        // Regular devices never receive directives.
        assert!(plan.directives[..config.n_regular]
            .iter()
            .all(|d| d.is_empty()));
    }

    #[test]
    fn burst_jobs_land_in_one_bucket_per_campaign() {
        let (config, plan) = plan_for(CampaignConfig::with(1, PacingStrategy::Burst));
        let spec = &plan.specs[0];
        let start = config.study_start().as_secs();
        for &w in &spec.workers {
            for d in &plan.directives[w] {
                let t = d.install_at.as_secs();
                assert!(t >= start && t < start + 2 * 86_400 + 3 * 3600);
                if let Some(r) = d.review_at {
                    assert!(r > d.install_at);
                }
            }
            assert_eq!(plan.directives[w].len(), spec.targets.len());
        }
        // All installs of one campaign share a single 6 h bucket boundary
        // set: max spread under burst is < 3 h.
        let times: Vec<u64> = spec
            .workers
            .iter()
            .flat_map(|&w| plan.directives[w].iter().map(|d| d.install_at.as_secs()))
            .collect();
        let (lo, hi) = (*times.iter().min().unwrap(), *times.iter().max().unwrap());
        assert!(hi - lo < 3 * 3600);
    }

    #[test]
    fn stealth_drops_some_jobs() {
        let (_, full) = plan_for(CampaignConfig::with(3, PacingStrategy::Burst));
        let (_, stealth) = plan_for(CampaignConfig::with(3, PacingStrategy::Stealth));
        let count = |p: &CampaignPlan| p.directives.iter().map(Vec::len).sum::<usize>();
        assert!(count(&stealth) < count(&full));
        assert!(count(&stealth) > 0);
    }
}
