//! Small distribution toolkit for persona calibration.
//!
//! The §6 measurements are heavy-tailed (medians far below means, large
//! SDs, extreme maxima), which log-normal rate models reproduce well. The
//! install-to-review delay of workers needs a *mixture*: a third of worker
//! reviews land within one day of installation while the body stretches to
//! hundreds of days (§6.3, Figure 7).

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};

/// A log-normal sampler clamped to `[min, max]`.
///
/// Parametrized by *median* and σ (`mu = ln(median)`), because the paper
/// reports medians; the mean then is `median · exp(σ²/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampedLogNormal {
    /// Median of the unclamped distribution.
    pub median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
    /// Lower clamp.
    pub min: f64,
    /// Upper clamp.
    pub max: f64,
}

impl ClampedLogNormal {
    /// Construct; panics on invalid parameters.
    pub fn new(median: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(min <= max, "min must not exceed max");
        ClampedLogNormal {
            median,
            sigma,
            min,
            max,
        }
    }

    /// Mean of the *unclamped* distribution (`median · e^{σ²/2}`).
    pub fn unclamped_mean(&self) -> f64 {
        self.median * (self.sigma * self.sigma / 2.0).exp()
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let d = LogNormal::new(self.median.ln(), self.sigma.max(1e-12))
            .expect("valid log-normal parameters");
        d.sample(rng).clamp(self.min, self.max)
    }

    /// Draw and round to a non-negative integer count.
    pub fn sample_count(&self, rng: &mut impl Rng) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }
}

/// The worker install-to-review delay: `weight` of the mass is an
/// exponential spike of same-day reviews; the rest is a log-normal body.
///
/// Calibrated in [`crate::params`] so that ~33% of worker reviews land
/// within one day (13,376 of 40,397 in the paper), the median sits near
/// 5 days and the mean near 10.4 days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayMixture {
    /// Probability of drawing from the fast (exponential) component.
    pub fast_weight: f64,
    /// Mean of the fast component, in days.
    pub fast_mean_days: f64,
    /// Log-normal body.
    pub body: ClampedLogNormal,
}

impl DelayMixture {
    /// Draw a delay in days.
    pub fn sample_days(&self, rng: &mut impl Rng) -> f64 {
        if rng.gen_bool(self.fast_weight) {
            let e = Exp::new(1.0 / self.fast_mean_days).expect("positive rate");
            e.sample(rng).min(self.body.max)
        } else {
            self.body.sample(rng)
        }
    }
}

/// Draw from a Poisson distribution with the given mean (0 for mean ≤ 0).
///
/// Daily event counts (installs, uninstalls, opens) are Poisson around a
/// per-device latent rate.
pub fn poisson(rng: &mut impl Rng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    rand_distr::Poisson::new(mean)
        .expect("positive mean")
        .sample(rng) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn lognormal_median_and_mean_track_parameters() {
        let d = ClampedLogNormal::new(5.0, 1.0, 0.0, f64::INFINITY);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((median - 5.0).abs() / 5.0 < 0.05, "median {median}");
        assert!(
            (mean - d.unclamped_mean()).abs() / d.unclamped_mean() < 0.1,
            "mean {mean}"
        );
    }

    #[test]
    fn clamping_respected() {
        let d = ClampedLogNormal::new(10.0, 2.0, 2.0, 20.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((2.0..=20.0).contains(&v));
        }
    }

    #[test]
    fn counts_are_rounded() {
        let d = ClampedLogNormal::new(3.0, 0.3, 1.0, 10.0);
        let mut r = rng();
        let c = d.sample_count(&mut r);
        assert!((1..=10).contains(&c));
    }

    #[test]
    fn delay_mixture_fast_fraction() {
        let m = DelayMixture {
            fast_weight: 0.33,
            fast_mean_days: 0.4,
            body: ClampedLogNormal::new(10.0, 1.0, 0.0, 574.0),
        };
        let mut r = rng();
        let n = 20_000;
        let within_day = (0..n).filter(|_| m.sample_days(&mut r) <= 1.0).count() as f64 / n as f64;
        // 33% spike plus the small body mass below 1 day.
        assert!((0.3..0.45).contains(&within_day), "P(≤1d) = {within_day}");
    }

    #[test]
    fn poisson_mean_tracks() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 6.4)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.4).abs() < 0.2, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn rejects_bad_median() {
        ClampedLogNormal::new(0.0, 1.0, 0.0, 1.0);
    }
}
