//! Persona parameter sets, calibrated to §6 of the paper.
//!
//! Each constructor documents the statistics it targets. The numbers are
//! per-*device* latent distributions: a device first draws its profile
//! (rates, counts) from these, then day-to-day behaviour is Poisson around
//! the profile — producing the across-device heterogeneity the paper's
//! scatterplots show.

use crate::dist::{ClampedLogNormal, DelayMixture};
use racket_types::Persona;

/// Generative parameters of one persona.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonaParams {
    /// Which persona this parametrizes.
    pub persona: Persona,
    /// Gmail accounts registered on the device.
    pub gmail_accounts: ClampedLogNormal,
    /// Number of distinct *consumer* services with accounts (WhatsApp,
    /// Facebook, …); Gmail and ASO tooling are counted separately.
    pub consumer_services: ClampedLogNormal,
    /// Probability of a DualSpace account (app cloner, §6.2).
    pub dualspace_prob: f64,
    /// Probability of a Freelancer account (job sourcing, §6.2).
    pub freelancer_prob: f64,
    /// Apps installed on the device when the study begins.
    pub initial_apps: ClampedLogNormal,
    /// Per-device mean of daily install events.
    pub daily_installs: ClampedLogNormal,
    /// Per-device mean of daily uninstall events.
    pub daily_uninstalls: ClampedLogNormal,
    /// Per-device mean of daily app-opening sessions.
    pub daily_opens: ClampedLogNormal,
    /// Fraction of installs that are ASO-promoted apps.
    pub promo_install_fraction: f64,
    /// Probability that a promoted install is ever *opened*.
    pub promo_open_prob: f64,
    /// Probability this device reviews a promoted app at all (some jobs
    /// are install-only retention work without a review).
    pub promo_job_review_prob: f64,
    /// Probability a promoted install gets reviewed (per posting account).
    pub promo_review_prob: f64,
    /// Accounts used to review one promoted app (workers post the same app
    /// from several device accounts, §6.3).
    pub promo_accounts_per_app: ClampedLogNormal,
    /// Probability a *personal* install is eventually reviewed.
    pub personal_review_prob: f64,
    /// Install-to-review delay for promoted apps, days.
    pub promo_review_delay: DelayMixture,
    /// Install-to-review delay for personal apps, days.
    pub personal_review_delay: DelayMixture,
    /// Probability a promoted app gets force-stopped after its job is done
    /// (§6.3: retention installs kept but stopped to avoid clutter).
    pub promo_stop_prob: f64,
    /// Probability an off-Play-store app is installed during history
    /// (§6.3, third-party stores / modded apps).
    pub off_store_prob: f64,
    /// Consumer-app taste breadth: `Some(k)` restricts personal installs
    /// to the `k` most popular apps (workers' personal use is mainstream);
    /// `None` samples the entire consumer catalog (regular users reach
    /// into the long tail).
    pub mainstream_only: Option<usize>,
    /// Fraction of the day the device is up and reporting snapshots
    /// (drives snapshots/day, Figure 4).
    pub uptime_fraction: ClampedLogNormal,
    /// Probability this worker is a *novice*: few accounts, few jobs, a
    /// device that still mostly looks personal. §8.2 observes the
    /// classifier catching "worker-controlled devices with low app
    /// suspiciousness, that may belong to novice workers".
    pub novice_prob: f64,
    /// Probability this regular user is a review *enthusiast* who posts
    /// far more often than the cohort baseline — the main source of
    /// regular-side boundary cases.
    pub enthusiast_prob: f64,
}

impl PersonaParams {
    /// Regular-user parameters.
    ///
    /// Targets (§6): Gmail accounts median 2, SD 1.66, max 10; ~6 account
    /// types (max 19); ~65.5 installed apps; 3.88 daily installs (median
    /// 2.0); 3.29 daily uninstalls; ~1.9 total reviews per device (max 36),
    /// 0.7 installed-and-reviewed apps; install-to-review mean 85.1 d,
    /// median 21.9 d, only 4/35 within a day.
    pub fn regular() -> Self {
        PersonaParams {
            persona: Persona::Regular,
            gmail_accounts: ClampedLogNormal::new(2.0, 0.45, 1.0, 10.0),
            consumer_services: ClampedLogNormal::new(5.0, 0.45, 1.0, 18.0),
            dualspace_prob: 0.01,
            freelancer_prob: 0.02,
            initial_apps: ClampedLogNormal::new(60.0, 0.45, 12.0, 220.0),
            daily_installs: ClampedLogNormal::new(2.0, 1.05, 0.0, 60.0),
            daily_uninstalls: ClampedLogNormal::new(1.8, 0.95, 0.0, 50.0),
            daily_opens: ClampedLogNormal::new(9.0, 0.5, 1.0, 40.0),
            promo_install_fraction: 0.0,
            promo_open_prob: 0.0,
            promo_job_review_prob: 0.0,
            promo_review_prob: 0.0,
            promo_accounts_per_app: ClampedLogNormal::new(1.0, 0.0, 1.0, 1.0),
            personal_review_prob: 0.012,
            promo_review_delay: Self::personal_delay(),
            personal_review_delay: Self::personal_delay(),
            promo_stop_prob: 0.0,
            off_store_prob: 0.02,
            mainstream_only: None,
            uptime_fraction: Self::uptime(),
            novice_prob: 0.0,
            enthusiast_prob: 0.08,
        }
    }

    /// Organic-worker parameters: a regular user's personal behaviour with
    /// ASO work layered on top (§2, §8.2: 123/178 worker devices).
    ///
    /// Targets: Gmail accounts median ~15 (combined worker median 21, mean
    /// 28.9, max 163); few consumer services; churn median 6.4 installs/day
    /// (mean 15.9); promoted installs reviewed from several accounts within
    /// days (median 5 d, 33% ≤ 1 d).
    pub fn organic_worker() -> Self {
        PersonaParams {
            persona: Persona::OrganicWorker,
            gmail_accounts: ClampedLogNormal::new(15.0, 0.85, 2.0, 163.0),
            consumer_services: ClampedLogNormal::new(3.0, 0.5, 1.0, 12.0),
            dualspace_prob: 0.55,
            freelancer_prob: 0.45,
            initial_apps: ClampedLogNormal::new(70.0, 0.45, 15.0, 280.0),
            daily_installs: ClampedLogNormal::new(6.0, 1.2, 0.0, 150.0),
            daily_uninstalls: ClampedLogNormal::new(2.6, 1.2, 0.0, 120.0),
            daily_opens: ClampedLogNormal::new(8.0, 0.5, 1.0, 40.0),
            promo_install_fraction: 0.55,
            promo_open_prob: 0.30,
            promo_job_review_prob: 0.90,
            promo_review_prob: 0.80,
            promo_accounts_per_app: ClampedLogNormal::new(2.2, 0.5, 1.0, 12.0),
            personal_review_prob: 0.012,
            promo_review_delay: Self::worker_delay(),
            personal_review_delay: Self::personal_delay(),
            promo_stop_prob: 0.30,
            off_store_prob: 0.08,
            mainstream_only: Some(120),
            uptime_fraction: Self::uptime(),
            novice_prob: 0.15,
            enthusiast_prob: 0.0,
        }
    }

    /// Dedicated-worker parameters: the device exists to promote apps
    /// (§8.2: 55/178 devices — all apps promotion-indicative, median 31
    /// Gmail accounts, median 23 stopped apps).
    pub fn dedicated_worker() -> Self {
        PersonaParams {
            persona: Persona::DedicatedWorker,
            gmail_accounts: ClampedLogNormal::new(31.0, 0.6, 5.0, 163.0),
            consumer_services: ClampedLogNormal::new(1.5, 0.5, 0.0, 6.0),
            dualspace_prob: 0.75,
            freelancer_prob: 0.6,
            initial_apps: ClampedLogNormal::new(85.0, 0.5, 20.0, 320.0),
            daily_installs: ClampedLogNormal::new(7.0, 1.25, 0.0, 200.0),
            daily_uninstalls: ClampedLogNormal::new(3.0, 1.25, 0.0, 150.0),
            daily_opens: ClampedLogNormal::new(4.0, 0.6, 0.0, 25.0),
            promo_install_fraction: 0.92,
            promo_open_prob: 0.22,
            promo_job_review_prob: 0.90,
            promo_review_prob: 0.80,
            promo_accounts_per_app: ClampedLogNormal::new(3.0, 0.5, 1.0, 15.0),
            personal_review_prob: 0.004,
            promo_review_delay: Self::worker_delay(),
            personal_review_delay: Self::personal_delay(),
            promo_stop_prob: 0.40,
            off_store_prob: 0.10,
            mainstream_only: Some(80),
            uptime_fraction: Self::uptime(),
            novice_prob: 0.08,
            enthusiast_prob: 0.0,
        }
    }

    /// Worker promoted-app delay: 33% same-day spike (exp, mean 0.4 d) plus
    /// a log-normal body (median 10 d, σ = 1.0), matching §6.3's worker
    /// mean 10.4 d / median 5 d / 33% within one day / max 574 d.
    fn worker_delay() -> DelayMixture {
        DelayMixture {
            fast_weight: 0.33,
            fast_mean_days: 0.4,
            body: ClampedLogNormal::new(10.0, 1.0, 0.05, 574.0),
        }
    }

    /// Personal-review delay: log-normal median ~22 d, σ = 1.6 (mean ≈
    /// 79 d), matching §6.3's regular-user mean 85.1 d / median 21.9 d /
    /// max 606 d.
    fn personal_delay() -> DelayMixture {
        DelayMixture {
            fast_weight: 0.08,
            fast_mean_days: 0.6,
            body: ClampedLogNormal::new(22.0, 1.6, 0.1, 606.0),
        }
    }

    /// Device uptime (snapshot-reporting fraction of the day). One shared
    /// distribution for every persona: Figure 4 shows worker and regular
    /// engagement overlapping heavily (means 8.2k vs 9.4k snapshots/day),
    /// so the reporting rate itself carries no cohort signal.
    fn uptime() -> ClampedLogNormal {
        ClampedLogNormal::new(0.52, 0.45, 0.02, 1.0)
    }

    /// The parameter set for a persona.
    pub fn for_persona(persona: Persona) -> Self {
        match persona {
            Persona::Regular => Self::regular(),
            Persona::OrganicWorker => Self::organic_worker(),
            Persona::DedicatedWorker => Self::dedicated_worker(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persona_mapping() {
        for p in [
            Persona::Regular,
            Persona::OrganicWorker,
            Persona::DedicatedWorker,
        ] {
            assert_eq!(PersonaParams::for_persona(p).persona, p);
        }
    }

    #[test]
    fn regular_targets_paper_means() {
        let p = PersonaParams::regular();
        // daily installs: median 2, unclamped mean ≈ 3.5 (paper: 3.88).
        let m = p.daily_installs.unclamped_mean();
        assert!((3.0..4.5).contains(&m), "daily install mean {m}");
        // No promotion behaviour at all.
        assert_eq!(p.promo_install_fraction, 0.0);
    }

    #[test]
    fn worker_targets_paper_means() {
        let p = PersonaParams::organic_worker();
        // Combined churn mean should land in the paper's ballpark (15.9).
        let m = p.daily_installs.unclamped_mean();
        assert!((10.0..20.0).contains(&m), "daily install mean {m}");
        assert!(p.promo_install_fraction > 0.4);
        let d = PersonaParams::dedicated_worker();
        assert!(d.promo_install_fraction > p.promo_install_fraction);
        assert!(d.consumer_services.median < p.consumer_services.median);
    }

    #[test]
    fn worker_delay_mean_near_10_days() {
        let d = PersonaParams::organic_worker().promo_review_delay;
        // mixture mean = 0.33·0.4 + 0.67·(10·e^{0.5}) ≈ 11.2 (paper 10.4).
        let mean =
            d.fast_weight * d.fast_mean_days + (1.0 - d.fast_weight) * d.body.unclamped_mean();
        assert!((8.0..13.0).contains(&mean), "delay mean {mean}");
    }

    #[test]
    fn personal_delay_mean_near_80_days() {
        let d = PersonaParams::regular().personal_review_delay;
        let mean =
            d.fast_weight * d.fast_mean_days + (1.0 - d.fast_weight) * d.body.unclamped_mean();
        assert!((60.0..100.0).contains(&mean), "delay mean {mean}");
    }

    #[test]
    fn gmail_ordering_regular_lt_organic_lt_dedicated() {
        let r = PersonaParams::regular().gmail_accounts.median;
        let o = PersonaParams::organic_worker().gmail_accounts.median;
        let d = PersonaParams::dedicated_worker().gmail_accounts.median;
        assert!(r < o && o < d);
    }
}
