//! Reusable per-lane scratch for the study driver's hot path.
//!
//! One [`LaneScratch`] lives on each device lane for the whole study. It
//! owns every buffer a lane-day needs — the planned action list, the
//! day's review output, the crawl-set membership deltas, and the
//! incremental app indexes [`DeviceAgent::plan_day_into`] reads — so a
//! steady-state device-day allocates nothing (pinned by
//! `tests/alloc_regression.rs`).
//!
//! ## Ownership rules
//!
//! * The **driver** (one lane = one device = one scratch) clears
//!   `actions` / `reviews` / `installed_deltas` implicitly through
//!   [`DeviceAgent::plan_day_into`] and [`LaneScratch::begin_day`]; the
//!   index vectors are never cleared after seeding — they are maintained
//!   incrementally.
//! * The **agent** reads `removable` / `openable` and uses `shuffle` as
//!   its working copy; it never mutates the indexes.
//! * The driver calls [`LaneScratch::note_install`] /
//!   [`LaneScratch::note_uninstall`] after *actually* mutating the device
//!   (guarded on the device's pre-action install state), which keeps the
//!   indexes exactly equal to the `filter().collect()` rebuilds they
//!   replace.
//!
//! ## RNG neutrality
//!
//! The indexes hold the same app IDs in the same (ascending) order as the
//! per-day rebuilds did — `Device::installed_apps` iterates a `BTreeMap`
//! in ascending key order, and the sorted insert/remove here preserves
//! that invariant — so every `shuffle` / `choose` sees identical inputs
//! and consumes identical RNG draws. Study output stays byte-identical.

#[cfg(doc)]
use crate::agent::DeviceAgent;
use crate::agent::TimelineAction;
use racket_playstore::AppCatalog;
use racket_types::{AppId, Persona, Review};

/// Per-lane reusable buffers and incremental app indexes (see the module
/// docs for the ownership and RNG-neutrality contract).
#[derive(Debug, Default, Clone)]
pub struct LaneScratch {
    /// The day's planned (and directive-merged) actions, sorted by time.
    pub actions: Vec<TimelineAction>,
    /// Reviews produced while applying the day's actions; drained by the
    /// driver serially in lane order.
    pub reviews: Vec<Review>,
    /// Install/uninstall membership deltas of this lane-day:
    /// `(app, true)` = newly installed, `(app, false)` = uninstalled.
    /// Folded into the study's crawl-set counts serially after the day.
    pub installed_deltas: Vec<(AppId, bool)>,
    /// Installed, non-preinstalled apps, ascending — the uninstall pool.
    pub(crate) removable: Vec<AppId>,
    /// Installed apps this persona opens organically, ascending — the
    /// open-session pool (workers exclude promoted installs; regular
    /// users open everything).
    pub(crate) openable: Vec<AppId>,
    /// Working copy of `removable` for the per-day shuffle.
    pub(crate) shuffle: Vec<AppId>,
}

impl LaneScratch {
    /// An empty scratch; call [`LaneScratch::seed_indexes`] before the
    /// first planned day.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the app indexes from the device's current state. Called once
    /// at lane setup (after history generation); afterwards the indexes
    /// are maintained by [`LaneScratch::note_install`] /
    /// [`LaneScratch::note_uninstall`].
    pub fn seed_indexes(
        &mut self,
        device: &racket_device::Device,
        catalog: &AppCatalog,
        persona: Persona,
    ) {
        self.removable.clear();
        self.openable.clear();
        for info in device.installed_apps() {
            if !info.preinstalled {
                self.removable.push(info.app);
            }
            if !catalog.promoted_apps().contains(&info.app) || persona == Persona::Regular {
                self.openable.push(info.app);
            }
        }
    }

    /// Reset the per-day output buffers (`reviews`, `installed_deltas`).
    /// `actions` is cleared by [`DeviceAgent::plan_day_into`].
    pub fn begin_day(&mut self) {
        self.reviews.clear();
        self.installed_deltas.clear();
    }

    /// Record that `app` is now installed (call only after a successful
    /// install of a previously absent app, or idempotently on reinstall —
    /// an already-indexed app is left untouched). Study-time installs are
    /// never preinstalled system apps, so the app always joins the
    /// removable pool.
    pub fn note_install(&mut self, app: AppId, catalog: &AppCatalog, persona: Persona) {
        if let Err(i) = self.removable.binary_search(&app) {
            self.removable.insert(i, app);
        }
        if !catalog.promoted_apps().contains(&app) || persona == Persona::Regular {
            if let Err(i) = self.openable.binary_search(&app) {
                self.openable.insert(i, app);
            }
        }
    }

    /// Record that `app` was uninstalled (call only when the device
    /// actually removed it).
    pub fn note_uninstall(&mut self, app: AppId) {
        if let Ok(i) = self.removable.binary_search(&app) {
            self.removable.remove(i);
        }
        if let Ok(i) = self.openable.binary_search(&app) {
            self.openable.remove(i);
        }
    }

    /// The current uninstall pool (test/inspection hook).
    pub fn removable(&self) -> &[AppId] {
        &self.removable
    }

    /// The current organic-open pool (test/inspection hook).
    pub fn openable(&self) -> &[AppId] {
        &self.openable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::DeviceAgent;
    use racket_playstore::CatalogConfig;
    use racket_types::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexes_track_the_rebuild_they_replace() {
        // Seed a realistic device, then apply churn while maintaining the
        // indexes incrementally; after every step they must equal the
        // filter().collect() rebuilds plan_day used to do.
        let catalog = AppCatalog::generate(&CatalogConfig::default());
        let mut store = racket_playstore::ReviewStore::new();
        let mut dir = racket_playstore::GoogleIdDirectory::new();
        let mut ids = crate::agent::IdAllocator::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut device = racket_device::Device::new(
            racket_types::DeviceId(1),
            racket_device::DeviceModel::generic(),
            racket_types::AndroidId(1),
        );
        let persona = Persona::OrganicWorker;
        let mut agent = DeviceAgent::new(persona, &mut rng);
        agent.setup_history(
            &mut device,
            &catalog,
            &mut store,
            &mut dir,
            &mut ids,
            SimTime::from_days(30),
            SimTime::from_days(45),
            &mut rng,
        );

        let rebuild = |device: &racket_device::Device| {
            let removable: Vec<AppId> = device
                .installed_apps()
                .filter(|a| !a.preinstalled)
                .map(|a| a.app)
                .collect();
            let openable: Vec<AppId> = device
                .installed_apps()
                .filter(|a| {
                    !catalog.promoted_apps().contains(&a.app) || persona == Persona::Regular
                })
                .map(|a| a.app)
                .collect();
            (removable, openable)
        };

        let mut scratch = LaneScratch::new();
        scratch.seed_indexes(&device, &catalog, persona);
        let (removable, openable) = rebuild(&device);
        assert_eq!(scratch.removable(), removable.as_slice());
        assert_eq!(scratch.openable(), openable.as_slice());

        // Churn: uninstall some existing apps, install fresh ones
        // (including promoted, which stays out of a worker's openable).
        let victims: Vec<AppId> = removable.iter().copied().take(3).collect();
        for (i, app) in victims.into_iter().enumerate() {
            let t = SimTime::from_days(30) + racket_types::SimDuration::from_secs(i as u64);
            assert!(device.is_installed(app));
            device.uninstall_app(app, t);
            scratch.note_uninstall(app);
        }
        let fresh: Vec<AppId> = catalog
            .promoted_apps()
            .iter()
            .chain(catalog.consumer_apps())
            .copied()
            .filter(|&a| !device.is_installed(a))
            .take(4)
            .collect();
        for (i, app) in fresh.into_iter().enumerate() {
            let t = SimTime::from_days(31) + racket_types::SimDuration::from_secs(i as u64);
            let meta = catalog.app(app);
            device.install_app(
                app,
                t,
                racket_types::PermissionProfile::grant_all(meta.permissions.clone()),
                meta.apk_hash,
            );
            scratch.note_install(app, &catalog, persona);
        }

        let (removable, openable) = rebuild(&device);
        assert_eq!(scratch.removable(), removable.as_slice());
        assert_eq!(scratch.openable(), openable.as_slice());
    }

    #[test]
    fn note_install_is_idempotent_on_reinstall() {
        let catalog = AppCatalog::generate(&CatalogConfig::default());
        let mut scratch = LaneScratch::new();
        let app = catalog.promoted_apps()[0];
        scratch.note_install(app, &catalog, Persona::DedicatedWorker);
        scratch.note_install(app, &catalog, Persona::DedicatedWorker);
        assert_eq!(scratch.removable(), &[app]);
        assert!(scratch.openable().is_empty(), "worker skips promoted apps");
        scratch.note_uninstall(app);
        assert!(scratch.removable().is_empty());
    }
}
