//! Vendored subset of the `proptest` property-testing API.
//!
//! Supports the patterns used by this workspace's test suites: the
//! [`proptest!`] macro over functions with `arg in strategy`,
//! `mut arg in strategy` and `arg: Type` bindings; range strategies over
//! numeric types; tuple strategies; [`Strategy::prop_map`];
//! [`prop_oneof!`] unions; `.{m,n}` string-pattern strategies;
//! [`collection::vec`]/[`collection::hash_set`]; [`any`]; and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! assertion macros.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic runs), and failing cases are reported without input
//! shrinking — the failure message carries the case index so a failure is
//! reproducible by construction.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of generated cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// Outcome of a single property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value from the RNG stream.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for `any::<T>()` — the full value domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generate arbitrary values of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_via_gen {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

any_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude range.
        let mag: f64 = rng.gen::<f64>() * 1e6;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

impl<const N: usize> Strategy for Any<[u8; N]> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String-pattern strategy: a `&str` is interpreted as a (tiny) regex
/// subset. Supported form: `.{m,n}` — between `m` and `n` arbitrary
/// printable characters. Other patterns panic at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("vendored proptest: unsupported string pattern `{self}` (only `.{{m,n}}`)")
        });
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Printable ASCII, biased toward letters — adequate for
                // payload round-trip properties.
                let c = rng.gen_range(0x20u8..0x7F);
                c as char
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Boxed strategy choosing uniformly among alternatives; the output of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Build a [`Union`]; used by [`prop_oneof!`].
pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    Union { options }
}

/// Erase a strategy's concrete type; used by [`prop_oneof!`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union_of(vec![$($crate::boxed($strat)),+])
    };
}

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specification accepted by [`vec`]: an exact length or a range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with the given size specification.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Build a vector strategy from an element strategy and a size.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates shrink the set below
    /// the drawn size, matching upstream's non-strict size semantics.
    pub struct HashSetStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Build a hash-set strategy from an element strategy and a size.
    pub fn hash_set<S, R>(elem: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: IntoSizeRange,
    {
        HashSetStrategy { elem, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: IntoSizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drive one property: generate cases, skip rejects, panic on failure.
///
/// Called by the expansion of [`proptest!`]; not part of upstream's public
/// API surface but harmless to expose.
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while accepted < DEFAULT_CASES {
        // Fixed seed per (property, stream) pair: runs are reproducible.
        let mut rng =
            StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64 ^ hash_name(name) ^ stream);
        stream += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > 16 * DEFAULT_CASES {
                    panic!(
                        "property `{name}`: too many prop_assume rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` falsified at case #{stream}: {msg}");
            }
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, enough to decorrelate per-property streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Define property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(xs in proptest::collection::vec(0u8..10, 1..50), n: usize) {
///         prop_assert!(xs.len() < 50);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(stringify!($name), |__rng| {
                $crate::__bind_params!(__rng; $($params)*);
                $body
                Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: expand one `proptest!` parameter list into `let` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:ident;) => {};
    ($rng:ident; mut $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::Strategy::generate(&($strat), $rng);
        $($crate::__bind_params!($rng; $($rest)*);)?
    };
    ($rng:ident; $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $arg = $crate::Strategy::generate(&($strat), $rng);
        $($crate::__bind_params!($rng; $($rest)*);)?
    };
    ($rng:ident; $arg:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $arg = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $($crate::__bind_params!($rng; $($rest)*);)?
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Reject the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Install(u8),
        Toggle(bool),
        Label(String),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..12).prop_map(Op::Install),
            any::<bool>().prop_map(Op::Toggle),
            ".{0,8}".prop_map(Op::Label),
        ]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..30, y in -1e3f64..1e3) {
            prop_assert!((3..30).contains(&x));
            prop_assert!((-1e3..1e3).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(
            xs in collection::vec(0u8..2, 4..60),
            ys in collection::vec(0f64..1.0, 7),
        ) {
            prop_assert!(xs.len() >= 4 && xs.len() < 60);
            prop_assert_eq!(ys.len(), 7);
            prop_assert!(xs.iter().all(|&v| v < 2));
        }

        #[test]
        fn mixed_param_forms_bind(
            mut data in collection::vec(0u32..10, 1..20),
            flip: usize,
            mask in any::<u64>(),
        ) {
            data.reverse();
            prop_assert!(!data.is_empty());
            let _ = flip.wrapping_add(mask as usize);
        }

        #[test]
        fn oneof_hits_every_arm(ops in collection::vec(arb_op(), 64)) {
            prop_assert_eq!(ops.len(), 64);
            for op in &ops {
                if let Op::Install(n) = op {
                    prop_assert!(*n < 12);
                }
                if let Op::Label(s) = op {
                    prop_assert!(s.len() <= 8);
                }
            }
        }

        #[test]
        fn tuples_and_arrays_generate(
            pair in (100_000u32..=999_999, any::<[u8; 32]>()),
            sets in collection::hash_set(0u32..50, 0..20),
        ) {
            prop_assert!((100_000..=999_999).contains(&pair.0));
            prop_assert_eq!(pair.1.len(), 32);
            prop_assert!(sets.len() < 20);
            prop_assert_ne!(pair.0, 0);
        }

        #[test]
        fn assume_filters_cases(n in 0u32..10, m in 0u32..10) {
            prop_assume!(n != m);
            prop_assert!(n != m);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let err = std::panic::catch_unwind(|| {
            crate::run_property("always_fails", |_rng| {
                Err(crate::TestCaseError::fail("nope"))
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_property("determinism_probe", |rng| {
                out.push(crate::Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
