//! Vendored subset of the `crossbeam` API: the `channel` module with
//! unbounded MPMC channels.
//!
//! Implemented over a mutex-protected `VecDeque` plus a condvar. Unlike
//! `std::sync::mpsc`, both the [`channel::Sender`] and the
//! [`channel::Receiver`] are cloneable, matching crossbeam's semantics,
//! which the transport layer relies on.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

/// Unbounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the rejected message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Whether the queue is currently empty (a racy hint for pollers:
        /// a `false` may be stale by the time the caller acts on it).
        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .is_empty()
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives, every sender is dropped, or the
        /// timeout elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() {
                    // One last non-blocking check before reporting timeout:
                    // a send may have raced the wakeup.
                    if let Some(v) = st.items.pop_front() {
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_reported_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(41u64).unwrap();
        assert_eq!(h.join().unwrap(), 41);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5u8).is_err());
    }
}
