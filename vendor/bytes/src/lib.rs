//! Vendored subset of the `bytes` API used by the wire codec:
//! [`BytesMut`] plus the [`Buf`]/[`BufMut`] trait methods the frame
//! parser calls. Backed by a plain `Vec<u8>` — `advance`/`split_to` move
//! memory rather than adjusting refcounted views, which is fine at the
//! frame sizes this workspace handles.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations.
pub trait Buf {
    /// Discard the first `n` bytes.
    fn advance(&mut self, n: usize);
    /// Number of readable bytes remaining.
    fn remaining(&self) -> usize;
    /// Consume and return a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume and return a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8;
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer with cheap front-consumption semantics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append bytes at the end.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Split off and return the first `n` bytes, leaving the rest.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(n);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance out of bounds");
        self.data.drain(..n);
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.data.len() >= 4, "get_u32_le underflow");
        let v = u32::from_le_bytes([self.data[0], self.data[1], self.data[2], self.data[3]]);
        self.advance(4);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.data.len() >= 2, "get_u16_le underflow");
        let v = u16::from_le_bytes([self.data[0], self.data[1]]);
        self.advance(2);
        v
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.data.is_empty(), "get_u8 underflow");
        let v = self.data[0];
        self.advance(1);
        v
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16_le(0xBEEF);
        b.put_u8(7);
        b.put_u32_le(123_456);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 123_456);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn indexing_matches_slice_semantics() {
        let b = BytesMut::from(&[9u8, 8, 7][..]);
        assert_eq!(b[0], 9);
        assert_eq!(&b[1..], &[8, 7]);
    }
}
