//! Vendored subset of the `bytes` API used by the wire codec:
//! [`BytesMut`] plus the [`Buf`]/[`BufMut`] trait methods the frame
//! parser calls. Backed by a `Vec<u8>` plus a read cursor: `advance` is
//! O(1) (it bumps the cursor), and the consumed prefix is reclaimed by
//! compacting only when it exceeds the live bytes — so a streaming
//! decoder that feeds and drains frame-by-frame never pays a per-frame
//! memmove of the residual buffer.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations.
pub trait Buf {
    /// Discard the first `n` bytes.
    fn advance(&mut self, n: usize);
    /// Number of readable bytes remaining.
    fn remaining(&self) -> usize;
    /// Consume and return a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume and return a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8;
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Growable byte buffer with cheap front-consumption semantics.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: bytes before it are consumed; the live contents are
    /// `data[start..]`.
    start: usize,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Reclaim the consumed prefix when it outweighs the live bytes.
    /// Amortized O(1): each live byte is moved at most once per doubling
    /// of the consumed region.
    fn maybe_compact(&mut self) {
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > self.data.len() - self.start {
            self.data.copy_within(self.start.., 0);
            self.data.truncate(self.data.len() - self.start);
            self.start = 0;
        }
    }

    /// Append bytes at the end.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.maybe_compact();
        self.data.extend_from_slice(src);
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` bytes, leaving the rest.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            data: self[..n].to_vec(),
            start: 0,
        };
        self.advance(n);
        head
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
    }

    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32_le underflow");
        let v = u32::from_le_bytes([self[0], self[1], self[2], self[3]]);
        self.advance(4);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.len() >= 2, "get_u16_le underflow");
        let v = u16::from_le_bytes([self[0], self[1]]);
        self.advance(2);
        v
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "get_u8 underflow");
        let v = self[0];
        self.advance(1);
        v
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.maybe_compact();
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

/// Equality is over the live contents only — a buffer that consumed and
/// compacted differently but holds the same bytes compares equal.
impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, start: 0 }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
            start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16_le(0xBEEF);
        b.put_u8(7);
        b.put_u32_le(123_456);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 123_456);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn indexing_matches_slice_semantics() {
        let b = BytesMut::from(&[9u8, 8, 7][..]);
        assert_eq!(b[0], 9);
        assert_eq!(&b[1..], &[8, 7]);
    }

    #[test]
    fn equality_ignores_cursor_position() {
        let mut a = BytesMut::from(vec![0, 0, 1, 2]);
        a.advance(2);
        let b = BytesMut::from(vec![1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_feed_and_drain_stays_bounded() {
        // A decoder-shaped workload: append a chunk, consume most of it,
        // repeat. The internal allocation must stay proportional to the
        // live bytes, not the total bytes ever fed.
        let mut b = BytesMut::new();
        for round in 0..10_000u32 {
            b.extend_from_slice(&round.to_le_bytes());
            if b.len() >= 4 {
                let v = b.get_u32_le();
                assert_eq!(v, round);
            }
        }
        assert!(b.data.capacity() < 1024, "capacity {}", b.data.capacity());
    }

    #[test]
    fn fully_consumed_buffer_resets_cursor() {
        let mut b = BytesMut::from(vec![1, 2, 3]);
        b.advance(3);
        assert!(b.is_empty());
        assert_eq!(b.start, 0, "cursor reset on full consumption");
        b.extend_from_slice(&[4, 5]);
        assert_eq!(&b[..], &[4, 5]);
    }
}
