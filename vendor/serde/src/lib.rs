//! Vendored, dependency-free subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate supplies
//! the slice of serde this workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, serialized through an
//! in-memory value tree ([`Content`]) that `serde_json` renders to and
//! parses from JSON text.
//!
//! Deliberate simplifications versus upstream serde (documented because
//! snapshots cross the wire in this format — see `ARCHITECTURE.md`):
//!
//! * serialization is eager into [`Content`] rather than visitor-driven;
//! * maps serialize as arrays of `[key, value]` pairs, so non-string map
//!   keys need no stringification;
//! * enums use the externally-tagged representation, like upstream.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree — the intermediate representation
/// between typed Rust values and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error for a type mismatch.
    pub fn expected(what: &str, got: &Content) -> Self {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitives -----------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("{v} out of range"))),
                    _ => Err(DeError::expected(stringify!($t), c)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("{v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("{v} out of range"))),
                    _ => Err(DeError::expected(stringify!($t), c)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    _ => Err(DeError::expected("number", c)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", c)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", c)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// ---- composites -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("array", c)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_content(item)?;
                }
                Ok(out)
            }
            Content::Seq(items) => {
                Err(DeError(format!("expected array of {N}, found {}", items.len())))
            }
            _ => Err(DeError::expected("array", c)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) [$n:expr];)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) if items.len() == $n => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", c)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) [1];
    (A: 0, B: 1) [2];
    (A: 0, B: 1, C: 2) [3];
    (A: 0, B: 1, C: 2, D: 3) [4];
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items
                .iter()
                .map(|pair| <(K, V)>::from_content(pair))
                .collect(),
            _ => Err(DeError::expected("map (array of pairs)", c)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items
                .iter()
                .map(|pair| <(K, V)>::from_content(pair))
                .collect(),
            _ => Err(DeError::expected("map (array of pairs)", c)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("array", c)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_content(&self) -> Content {
        // Sort the rendering for stable output across hasher states.
        let mut rendered: Vec<String> =
            self.iter().map(|v| format!("{:?}", v.to_content())).collect();
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        let mut paired: Vec<(String, Content)> =
            rendered.drain(..).zip(items.drain(..)).collect();
        paired.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Seq(paired.into_iter().map(|(_, v)| v).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("array", c)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

// ---- derive support -------------------------------------------------------

/// Helpers used by generated code. Not part of the public API contract.
pub mod __private {
    use super::{Content, DeError};

    /// Fetch a struct field from an object, erroring with the field name.
    pub fn field<'c>(c: &'c Content, name: &str) -> Result<&'c Content, DeError> {
        c.get(name).ok_or_else(|| DeError(format!("missing field `{name}`")))
    }

    /// Fetch element `i` of a tuple-struct array.
    pub fn element(c: &Content, i: usize) -> Result<&Content, DeError> {
        match c {
            Content::Seq(items) => items
                .get(i)
                .ok_or_else(|| DeError(format!("missing tuple element {i}"))),
            _ => Err(DeError::expected("array", c)),
        }
    }

    /// Interpret an externally-tagged enum value: returns the variant name
    /// and its payload (`None` for unit variants).
    pub fn variant(c: &Content) -> Result<(&str, Option<&Content>), DeError> {
        match c {
            Content::Str(name) => Ok((name, None)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((&entries[0].0, Some(&entries[0].1)))
            }
            _ => Err(DeError::expected("enum (string or single-key object)", c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some = Some(7u32).to_content();
        assert_eq!(Option::<u32>::from_content(&some), Ok(Some(7)));
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn array_round_trip() {
        let a = [1u8, 2, 3];
        let c = a.to_content();
        assert_eq!(<[u8; 3]>::from_content(&c), Ok([1, 2, 3]));
        assert!(<[u8; 4]>::from_content(&c).is_err());
    }

    #[test]
    fn btreemap_round_trip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(1u32, "y".to_string());
        let c = m.to_content();
        let back: std::collections::BTreeMap<u32, String> =
            Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_range_errors() {
        let c = Content::U64(300);
        assert!(u8::from_content(&c).is_err());
        assert_eq!(u16::from_content(&c), Ok(300));
    }
}
