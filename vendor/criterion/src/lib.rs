//! Vendored subset of the `criterion` benchmarking API.
//!
//! Provides the types and macros the `crates/bench` benchmark targets
//! compile against: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`] and the `criterion_group!` /
//! `criterion_main!` macros. Instead of upstream's statistical sampling it
//! runs a short warmup plus a small fixed number of timed passes and
//! prints mean wall time (and throughput when configured) — enough to
//! compare runs, cheap enough that accidentally executing a bench binary
//! under `cargo test` stays fast.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement marker types (only wall-clock time is supported).
pub mod measurement {
    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Prevent the optimizer from eliding a value. Re-exported for parity with
/// upstream; `std::hint::black_box` works equally well.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time the routine: one warmup pass, then a fixed number of timed
    /// passes whose mean is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warmup / fault-in
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
            _measurement: PhantomData,
        }
    }

    /// Print the closing summary (no-op in the vendored subset).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

/// Timed passes per benchmark. Small by design: the vendored harness
/// reports a mean, not a distribution.
const TIMED_ITERS: u64 = 5;

impl<M> BenchmarkGroup<'_, M> {
    /// Accept upstream's sample-size hint (ignored; iteration count is
    /// fixed in the vendored subset).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Configure throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: TIMED_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.name, &b);
        self
    }

    /// Run one benchmark against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: TIMED_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let mut line = format!("{}/{:<28} {}", self.name, id, fmt_time(mean));
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "B"),
                Throughput::Elements(n) => (n as f64, "elem"),
            };
            if mean > 0.0 {
                line.push_str(&format!("  ({:.1} M{}/s)", amount / mean / 1e6, unit));
            }
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the bench binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut runs = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // One warmup + TIMED_ITERS timed passes.
        assert_eq!(runs, 1 + TIMED_ITERS);
    }

    #[test]
    fn benchmark_id_renders_param() {
        let id = BenchmarkId::new("knn_query", 42);
        assert_eq!(id.name, "knn_query/42");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
