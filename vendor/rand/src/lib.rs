//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace ships the small slice of `rand` it actually uses:
//! [`RngCore`]/[`Rng`]/[`SeedableRng`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64 — *not* the upstream ChaCha
//! generator, so streams differ from crates.io `rand`, but they are stable
//! across platforms and releases of this repo, which is what the
//! simulation's determinism contract in `ARCHITECTURE.md` requires), and
//! the [`seq::SliceRandom`] helpers.
//!
//! Everything is implemented from scratch; no code is copied from the
//! upstream crate.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

/// A low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (stable across
    /// platforms; every simulation seed in this workspace goes through
    /// here).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and stream derivation.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole value range (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls for `Range<T>`/`RangeInclusive<T>` are generic
/// over this trait so that `gen_range(1.05..1.30)` unifies the literal's
/// type with the result type (matching upstream's inference behavior).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draw uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Fill `self` with random data.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// Fill a buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Small, fast, and with exactly reproducible streams from
    /// [`SeedableRng::seed_from_u64`] on every platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one degenerate xoshiro seed.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count() as f64;
        assert!((hits / n as f64 - 0.3).abs() < 0.02);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn fill_fills_arrays() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = [0u8; 16];
        rng.fill(&mut a);
        assert_ne!(a, [0u8; 16]);
    }
}
