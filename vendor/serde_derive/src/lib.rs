//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no `syn`/`quote`), which constrains the supported input
//! shapes to what this workspace actually derives on:
//!
//! * structs with named fields, tuple structs (incl. newtypes), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged);
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Unsupported shapes panic at compile time with a clear message rather
//! than silently mis-serializing.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Input {
    /// `struct S;`
    UnitStruct { name: String },
    /// `struct S(T, U);` — field count.
    TupleStruct { name: String, arity: usize },
    /// `struct S { a: T, ... }` — field names.
    NamedStruct { name: String, fields: Vec<String> },
    /// `enum E { ... }`
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip `#[...]` attribute pairs at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a `pub` / `pub(...)` visibility at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated non-empty segments, tracking `<...>`
/// depth (parens/brackets/braces arrive pre-grouped).
fn count_fields(group: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut seen_any = false;
    let mut angle = 0i32;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                seen_any = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                seen_any = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if seen_any {
                    count += 1;
                }
                seen_any = false;
            }
            _ => seen_any = true,
        }
    }
    if seen_any {
        count += 1;
    }
    count
}

/// Field names of a named-field body.
fn named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        i = skip_vis(group, i);
        let Some(TokenTree::Ident(id)) = group.get(i) else { break };
        fields.push(id.to_string());
        i += 1;
        // Expect `:`, then the type until a top-level comma.
        let mut angle = 0i32;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variants of an enum body.
fn enum_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        let Some(TokenTree::Ident(id)) = group.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let shape = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next top-level comma (covers discriminants).
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: unexpected token `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity =
                    count_fields(&g.stream().into_iter().collect::<Vec<_>>());
                Input::TupleStruct { name, arity }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields =
                    named_fields(&g.stream().into_iter().collect::<Vec<_>>());
                Input::NamedStruct { name, fields }
            }
            _ => Input::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants =
                    enum_variants(&g.stream().into_iter().collect::<Vec<_>>());
                Input::Enum { name, variants }
            }
            _ => panic!("serde derive: malformed enum"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }}
            }}"
        ),
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_content(&self) -> ::serde::Content {{
                    ::serde::Serialize::to_content(&self.0)
                }}
            }}"
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_content(&self) -> ::serde::Content {{
                        ::serde::Content::Seq(::std::vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::NamedStruct { name, fields } => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_content(&self) -> ::serde::Content {{
                        ::serde::Content::Map(::std::vec![{}])
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_content(&self) -> ::serde::Content {{
                        match self {{ {} }}
                    }}
                }}",
                arms.join("\n")
            )
        }
    };
    body.parse().expect("serde derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_content(_c: &::serde::Content)
                    -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_content(c: &::serde::Content)
                    -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))
                }}
            }}"
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_content(\
                         ::serde::__private::element(c, {i})?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_content(c: &::serde::Content)
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        ::std::result::Result::Ok({name}({}))
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::NamedStruct { name, fields } => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::__private::field(c, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_content(c: &::serde::Content)
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        ::std::result::Result::Ok({name} {{ {} }})
                    }}
                }}",
                items.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "\"{vname}\" => {{
                                let p = payload.ok_or_else(|| ::serde::DeError(
                                    ::std::format!(\"variant `{vname}` expects data\")))?;
                                ::std::result::Result::Ok({name}::{vname}(
                                    ::serde::Deserialize::from_content(p)?))
                            }}"
                        ),
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_content(\
                                         ::serde::__private::element(p, {i})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{
                                    let p = payload.ok_or_else(|| ::serde::DeError(
                                        ::std::format!(\"variant `{vname}` expects data\")))?;
                                    ::std::result::Result::Ok({name}::{vname}({}))
                                }}",
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::__private::field(p, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{
                                    let p = payload.ok_or_else(|| ::serde::DeError(
                                        ::std::format!(\"variant `{vname}` expects data\")))?;
                                    ::std::result::Result::Ok({name}::{vname} {{ {} }})
                                }}",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_content(c: &::serde::Content)
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        let (name, payload) = ::serde::__private::variant(c)?;
                        match name {{
                            {}
                            other => ::std::result::Result::Err(::serde::DeError(
                                ::std::format!(\"unknown variant `{{other}}`\"))),
                        }}
                    }}
                }}",
                arms.join("\n")
            )
        }
    };
    body.parse().expect("serde derive: generated Deserialize impl must parse")
}
