//! Vendored, dependency-free subset of the `rand_distr` 0.4 API.
//!
//! Implements exactly the distributions this workspace samples — normal,
//! log-normal, exponential and Poisson — on top of the vendored [`rand`]
//! crate. Algorithms are textbook (Box–Muller, inverse CDF, Knuth), chosen
//! for portability and reproducibility rather than raw speed: a sample is
//! a pure function of the RNG stream, which the simulation's determinism
//! contract relies on.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use rand::{Rng, RngCore};

/// Sampling interface, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Draw a standard normal variate via Box–Muller (one of the pair).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Construct; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("sigma must be finite and non-negative"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Construct; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error("lambda must be finite and positive"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        // Inverse CDF; 1 - u avoids ln(0).
        -(1.0 - u).ln() / self.lambda
    }
}

/// Poisson distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Construct; `mean` must be finite and positive.
    pub fn new(mean: f64) -> Result<Self, Error> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(Error("mean must be finite and positive"));
        }
        Ok(Poisson { mean })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 300.0 {
            // Knuth's product-of-uniforms method, exact for modest means.
            let limit = (-self.mean).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation for large means (not used by the
            // calibrated personas, but keeps the API total).
            let z = standard_normal(rng);
            (self.mean + self.mean.sqrt() * z).max(0.0).round()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median_tracks_mu() {
        let d = LogNormal::new(5.0f64.ln(), 0.8).unwrap();
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 5.0).abs() / 5.0 < 0.05, "median {median}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let d = Exp::new(0.25).unwrap();
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        assert!((mean_of(&xs) - 4.0).abs() < 0.1);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_mean_and_variance_track() {
        let d = Poisson::new(6.4).unwrap();
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        let m = mean_of(&xs);
        assert!((m - 6.4).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
    }
}
