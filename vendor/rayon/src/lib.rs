//! Vendored subset of the `rayon` data-parallelism API.
//!
//! Implements eager, order-preserving parallel iterators over
//! `std::thread::scope`: a [`ParIter`] materializes its items, each
//! combinator fans the items out across worker threads in contiguous
//! index chunks and reassembles results in the original order. This gives
//! the property the simulation's determinism contract depends on:
//! **output is a pure function of the input order, never of the thread
//! count or scheduling**.
//!
//! The worker count is read from `RAYON_NUM_THREADS` on every operation
//! (falling back to the machine's available parallelism), so tests can
//! flip thread counts mid-process to prove thread-count independence.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use std::ops::Range;

/// Number of worker threads used for the next parallel operation.
///
/// Reads `RAYON_NUM_THREADS` each call — unlike upstream's process-wide
/// pool, changing the variable takes effect immediately.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Map `items` through `f` on worker threads, preserving order.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// An eager parallel iterator: items are materialized, combinators run
/// immediately on worker threads, order is preserved.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, |t| f(t));
    }

    /// Collect the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Reduce items with `op` after an identity seed, left to right.
    /// Sequential over the materialized items, so the fold order (and any
    /// floating-point result) is deterministic.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Conversion into a [`ParIter`] by value, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutable borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutable item type.
    type Item: Send + 'a;
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_thread_count_independent() {
        let compute = || -> Vec<u64> {
            (0..500u64).into_par_iter().map(|i| i * i + 1).collect()
        };
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = compute();
        std::env::set_var("RAYON_NUM_THREADS", "7");
        let parallel = compute();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn for_each_visits_every_item() {
        let sum = AtomicU64::new(0);
        (1..=100u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut xs: Vec<u32> = (0..64).collect();
        xs.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(xs, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn reduce_is_left_fold() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let joined = v
            .into_par_iter()
            .reduce(String::new, |mut acc, s| {
                acc.push_str(&s);
                acc
            });
        assert_eq!(joined, "abc");
    }
}
