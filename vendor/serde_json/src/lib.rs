//! Vendored, dependency-free subset of the `serde_json` API.
//!
//! Serializes the vendored serde [`Content`] value tree to JSON text and
//! parses it back. Covers the workspace's needs: `to_string`, `to_vec`,
//! `from_str`, `from_slice` and an [`Error`] type. Maps render as JSON
//! objects in insertion order; numbers parse back as `U64`/`I64` when
//! integral (the deserialize impls widen as needed).

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use serde::{Content, DeError, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Inf; degrade to null like serde_json's
                // arbitrary-precision feature would reject.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1; // to the first hex digit
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last digit
                                self.expect(b'\\')?;
                                self.expect(b'u')?; // pos now at first hex digit
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| {
                                Error(format!("bad \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // Called with pos at the first hex digit; leaves pos on the last
        // digit (the caller advances past it).
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, 42);

        let s = to_string(&-17i64).unwrap();
        let back: i64 = from_str(&s).unwrap();
        assert_eq!(back, -17);

        let s = to_string(&2.5f64).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.5);

        let s = to_string("hi \"there\"\n").unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "hi \"there\"\n");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<u32> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let text = r#" { "a" : [ 1 , 2 ] , "b" : { "c" : true } } "#;
        let c: Content = {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        assert!(matches!(c.get("a"), Some(Content::Seq(v)) if v.len() == 2));
        assert!(c.get("b").and_then(|b| b.get("c")).is_some());
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }
}
