//! Vendored subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Mirrors the two properties callers rely on: `lock()` returns a guard
//! directly (no poisoning `Result`), and a panic while holding the lock
//! does not poison it for other threads — a poisoned std lock is simply
//! recovered.

// Vendored code is linted as imported; the workspace clippy gate
// (-D warnings) applies to first-party crates only.
#![allow(clippy::all)]

use std::ops::{Deref, DerefMut};

/// Mutual-exclusion lock with `parking_lot` semantics (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with `parking_lot` semantics (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
