//! Live collection over real TCP.
//!
//! Boots the collection server on a loopback socket, then runs one
//! simulated device through the complete §3 pipeline: sign-in with the
//! participant code, periodic fast/slow snapshots, on-device buffering
//! with LZSS compression and threshold rotation, framed uploads, and
//! SHA-256 hash acknowledgements that release the local files.
//!
//! ```sh
//! cargo run --release --example live_collection
//! ```

use parking_lot::Mutex;
use racket_collect::transport::recv_message;
use racket_collect::wire::{FrameCodec, Message};
use racket_collect::{
    CollectionServer, CollectorConfig, DataBuffer, SnapshotCollector, TcpTransport, Transport,
};
use racket_device::{Device, DeviceModel};
use racket_types::{
    AndroidId, ApkHash, AppId, DeviceId, InstallId, ParticipantId, PermissionProfile, SimTime,
};
use std::sync::Arc;

const PARTICIPANT: ParticipantId = ParticipantId(482_913);
const INSTALL: InstallId = InstallId(4_829_130_017);

fn main() {
    println!("== Live collection over TCP loopback ==\n");

    // Server side.
    let server = Arc::new(Mutex::new(CollectionServer::new([PARTICIPANT])));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    println!("collection server listening on {addr}");
    let server_bg = Arc::clone(&server);
    let server_thread =
        std::thread::spawn(move || CollectionServer::serve_tcp(server_bg, listener, 1));

    // Client side: a device with a few apps and some activity.
    let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(0xFEED));
    for app in 0..5u32 {
        device.install_app(
            AppId(app),
            SimTime::from_secs(u64::from(app) * 60),
            PermissionProfile::default(),
            ApkHash([app as u8; 16]),
        );
    }
    device.open_app(AppId(2), SimTime::from_mins(10), 300);

    let mut transport = TcpTransport::connect(addr).expect("connect");
    let mut codec = FrameCodec::new();

    // 1. Sign in with the recruitment code.
    transport
        .send(
            &Message::SignIn {
                participant: PARTICIPANT,
                install: INSTALL,
            }
            .encode(),
        )
        .expect("send");
    let ack = recv_message(&mut transport, &mut codec)
        .expect("recv")
        .expect("ack");
    println!("sign-in: {ack:?}");
    assert_eq!(ack, Message::SignInAck { accepted: true });

    // 2. Collect snapshots for a simulated hour and buffer them.
    let mut collector = SnapshotCollector::new(CollectorConfig::default(), INSTALL, PARTICIPANT);
    let mut buffer = DataBuffer::new();
    for minute in 0..60 {
        let now = SimTime::from_mins(minute);
        for snap in collector.poll(&device, now) {
            buffer.push(&snap);
        }
        if minute == 30 {
            device.open_app(AppId(4), now, 120); // some mid-hour activity
        }
    }
    buffer.flush();
    println!(
        "buffered one hour of snapshots: {} files ready, compression ratio {:.1}×",
        buffer.pending_count(),
        buffer.compression_ratio()
    );

    // 3. Upload each file; delete it only on a matching hash ack.
    let files: Vec<_> = buffer.pending().cloned().collect();
    for f in files {
        transport
            .send(
                &Message::SnapshotUpload {
                    install: INSTALL,
                    file_id: f.file_id,
                    fast: f.fast,
                    payload: f.data.clone(),
                }
                .encode(),
            )
            .expect("send");
        match recv_message(&mut transport, &mut codec)
            .expect("recv")
            .expect("reply")
        {
            Message::UploadAck { file_id, sha256 } => {
                let deleted = buffer.acknowledge(file_id, sha256);
                println!(
                    "file {file_id}: server hash {}…, local file {}",
                    racket_collect::hash::to_hex(&sha256[..4]),
                    if deleted { "deleted" } else { "kept for retry" }
                );
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(buffer.pending_count(), 0, "all files acknowledged");

    drop(transport); // close the connection so the server thread exits
    server_thread
        .join()
        .expect("server thread")
        .expect("serve_tcp");

    // 4. What the server aggregated.
    let server = server.lock();
    let record = server.record(INSTALL).expect("record exists");
    println!(
        "\nserver aggregate: {} fast + {} slow snapshots over {} active day(s), {} apps observed",
        record.n_fast,
        record.n_slow,
        record.active_days(),
        record.apps.len()
    );
    let stats = server.stats();
    println!(
        "server stats: {} files, {} snapshots, {} bad uploads",
        stats.files, stats.snapshots, stats.bad_uploads
    );
}
