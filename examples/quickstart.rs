//! Quickstart: run a small RacketStore study end to end.
//!
//! Generates a 60-device fleet (regular users + ASO workers), drives it
//! through its monitored windows under live snapshot collection (full wire
//! protocol), labels apps with the paper's §7.2 rules, trains the app
//! classifier and prints its cross-validated metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use racket_ml::Resampling;
use racket_types::Cohort;
use racketstore::app_classifier::{evaluate, AppUsageDataset};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::study::{Study, StudyConfig};

fn main() {
    println!("== RacketStore quickstart ==\n");

    // 1. Run the study: simulate the fleet under live collection.
    let config = StudyConfig::test_scale();
    println!(
        "simulating {} devices ({} regular, {} worker) over ≤{} days…",
        config.fleet.n_devices(),
        config.fleet.n_regular,
        config.fleet.n_organic + config.fleet.n_dedicated,
        config.fleet.max_study_days,
    );
    let out = Study::new(config).run();
    println!(
        "collected {} snapshots in {} uploaded files ({} reviews crawled live)\n",
        out.server_stats.snapshots, out.server_stats.files, out.reviews_crawled
    );

    // 2. Cohort contrast at a glance.
    let total = |c: Cohort| out.cohort(c).map(|o| o.total_reviews()).sum::<usize>();
    println!(
        "ground truth: worker devices posted {} reviews, regular devices {}\n",
        total(Cohort::Worker),
        total(Cohort::Regular)
    );

    // 3. Label apps (suspicious vs non-suspicious) and build instances.
    let labels = label_apps(&out, &LabelingConfig::test_scale());
    println!(
        "labeled {} suspicious and {} non-suspicious apps",
        labels.suspicious.len(),
        labels.non_suspicious.len()
    );
    let dataset = AppUsageDataset::build(&out, &labels);
    println!(
        "app-usage dataset: {} promotion + {} personal instances\n",
        dataset.n_suspicious(),
        dataset.n_regular()
    );

    // 4. Train and cross-validate the Table 1 algorithms.
    println!("10-fold cross-validation (Table 1 algorithms):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "algo", "precision", "recall", "F1", "AUC"
    );
    let report = evaluate(&dataset, 1, Resampling::None);
    for row in &report.table {
        println!(
            "{:<6} {:>9.2}% {:>9.2}% {:>9.2}% {:>10.4}",
            row.name,
            row.metrics.precision * 100.0,
            row.metrics.recall * 100.0,
            row.metrics.f1 * 100.0,
            row.metrics.auc
        );
    }

    println!("\ntop-5 features by mean decrease in Gini (Figure 13):");
    for (name, score) in report.importance.iter().take(5) {
        println!("  {name:<32} {score:.4}");
    }
}
