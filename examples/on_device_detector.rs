//! Privacy-preserving on-device detection (§9).
//!
//! The paper proposes that app stores embed the pre-trained classifiers in
//! their own pre-installed clients: features are computed *locally* from
//! data that never leaves the device, and only the suspicion verdicts are
//! reported. This example plays that deployment out: the classifier is
//! trained centrally on the consented study data, then shipped to each
//! device, which evaluates its own apps and reports nothing but a flag
//! count.
//!
//! ```sh
//! cargo run --release --example on_device_detector
//! ```

use racket_types::Cohort;
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::study::{Study, StudyConfig};

/// What the device reports upstream: counts only, no usage data.
struct PrivacyReport {
    apps_scanned: usize,
    apps_flagged: usize,
}

impl PrivacyReport {
    /// The on-device evaluation: all feature computation stays local.
    fn compute(
        detector: &AppClassifier,
        obs: &racket_features::DeviceObservation,
    ) -> PrivacyReport {
        let mut flagged = 0;
        let mut scanned = 0;
        for app in obs.record.apps.keys() {
            scanned += 1;
            // suspicion_proba internally extracts the §7.1 features from
            // the device's local observation; nothing is exported.
            if detector.suspicion_proba(obs, *app) >= 0.5 {
                flagged += 1;
            }
        }
        PrivacyReport {
            apps_scanned: scanned,
            apps_flagged: flagged,
        }
    }

    fn suspiciousness(&self) -> f64 {
        if self.apps_scanned == 0 {
            0.0
        } else {
            self.apps_flagged as f64 / self.apps_scanned as f64
        }
    }
}

fn main() {
    println!("== On-device, privacy-preserving ASO detection ==\n");

    // Central training phase (on consented study data).
    let out = Study::new(StudyConfig::test_scale()).run();
    let labels = label_apps(&out, &LabelingConfig::test_scale());
    let dataset = AppUsageDataset::build(&out, &labels);
    let detector = AppClassifier::train(&dataset);
    println!(
        "central phase: detector trained on {} labeled instances\n",
        dataset.data.len()
    );

    // Deployment phase: each device reports only aggregate flags.
    println!(
        "{:<12} {:>8} {:>8} {:>16}  (raw usage data never leaves the device)",
        "cohort", "scanned", "flagged", "suspiciousness"
    );
    let mut worker_high = 0;
    let mut worker_total = 0;
    let mut regular_high = 0;
    let mut regular_total = 0;
    for (obs, truth) in out.observations.iter().zip(&out.truth) {
        let report = PrivacyReport::compute(&detector, obs);
        let cohort = truth.persona.cohort();
        match cohort {
            Cohort::Worker => {
                worker_total += 1;
                worker_high += usize::from(report.suspiciousness() > 0.5);
            }
            Cohort::Regular => {
                regular_total += 1;
                regular_high += usize::from(report.suspiciousness() > 0.5);
            }
        }
        if worker_total + regular_total <= 8 {
            println!(
                "{:<12} {:>8} {:>8} {:>15.1}%",
                cohort.label(),
                report.apps_scanned,
                report.apps_flagged,
                report.suspiciousness() * 100.0
            );
        }
    }
    println!("…\n");
    println!(
        "devices exceeding the 50% suspiciousness red-flag line: \
         {worker_high}/{worker_total} worker vs {regular_high}/{regular_total} regular"
    );
    assert!(worker_high * regular_total > regular_high * worker_total);
    println!(
        "\nonly these counters — never accounts, app lists or timestamps — would be reported."
    );
}
