//! Device audit: who is a worker, and how organic are they?
//!
//! Runs the full two-stage pipeline of the paper — §7 app classifier
//! feeding the §8 device classifier through the *app suspiciousness*
//! feature — and prints the Table 2 metrics plus the Figure 15
//! organic/dedicated breakdown of worker devices.
//!
//! ```sh
//! cargo run --release --example device_audit
//! ```

use racket_ml::Resampling;
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::device_classifier::{evaluate, DeviceDataset};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::study::{Study, StudyConfig};

fn main() {
    println!("== Device audit ==\n");
    let out = Study::new(StudyConfig::test_scale()).run();

    // Stage 1: the app classifier.
    let labels = label_apps(&out, &LabelingConfig::test_scale());
    let app_dataset = AppUsageDataset::build(&out, &labels);
    let app_clf = AppClassifier::train(&app_dataset);
    println!(
        "stage 1: app classifier trained on {} promotion / {} personal instances",
        app_dataset.n_suspicious(),
        app_dataset.n_regular()
    );

    // Stage 2: the device classifier (SMOTE-balanced, 10-fold CV).
    let device_dataset = DeviceDataset::build(&out, &app_clf, 2, None, 7);
    let report = evaluate(&device_dataset, Resampling::Smote { k: 5 });
    println!(
        "stage 2: device dataset has {} worker / {} regular devices\n",
        report.n_workers, report.n_regular
    );

    println!("10-fold CV with SMOTE (Table 2 algorithms):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "algo", "precision", "recall", "F1", "AUC"
    );
    for row in &report.table {
        println!(
            "{:<6} {:>9.2}% {:>9.2}% {:>9.2}% {:>10.4}",
            row.name,
            row.metrics.precision * 100.0,
            row.metrics.recall * 100.0,
            row.metrics.f1 * 100.0,
            row.metrics.auc
        );
    }

    println!("\ntop-5 device features (Figure 14):");
    for (name, score) in report.importance.iter().take(5) {
        println!("  {name:<28} {score:.4}");
    }

    let split = &report.split;
    println!(
        "\nFigure 15 — worker-device breakdown: {} organic-indicative, {} promotion-dedicated \
         ({:.1}% organic; paper: 69.1%)",
        split.organic,
        split.dedicated,
        split.organic_fraction() * 100.0
    );
    println!("\nsample of (suspiciousness, installed-and-reviewed) points:");
    for (susp, reviewed) in split.points.iter().take(10) {
        println!("  suspiciousness {susp:>5.2}  reviewed apps {reviewed:>4}");
    }
}
