//! An ASO campaign under the microscope.
//!
//! The scenario the paper's introduction motivates: a developer buys
//! installs and reviews for an app; the promotion is spread across worker
//! devices that install it, review it quickly from several Gmail accounts
//! each, and barely open it. This example follows one promoted app through
//! the simulated store, contrasts its install-to-review pattern with a
//! popular consumer app, and shows what the trained detector says about
//! each (app, device) instance.
//!
//! ```sh
//! cargo run --release --example aso_campaign
//! ```

use racket_types::{AppId, Cohort};
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::study::{Study, StudyConfig};

fn main() {
    println!("== Anatomy of an ASO campaign ==\n");
    let out = Study::new(StudyConfig::test_scale()).run();

    // Pick the promoted app seen on the most worker devices.
    let campaign_app = *out
        .fleet
        .catalog
        .promoted_apps()
        .iter()
        .max_by_key(|&&app| {
            out.cohort(Cohort::Worker)
                .filter(|o| o.record.apps.contains_key(&app))
                .count()
        })
        .expect("catalog has promoted apps");
    // And the most popular legitimate app for contrast.
    let popular_app = out.fleet.catalog.consumer_apps()[0];

    for (title, app) in [
        ("promoted (campaign target)", campaign_app),
        ("popular consumer app", popular_app),
    ] {
        describe_app(&out, app, title);
    }

    // Train the detector and score every instance of the campaign app.
    let labels = label_apps(&out, &LabelingConfig::test_scale());
    let dataset = AppUsageDataset::build(&out, &labels);
    let detector = AppClassifier::train(&dataset);

    println!("detector verdicts for {campaign_app} per hosting device:");
    println!("{:<10} {:<10} {:>12}", "device", "cohort", "P(promotion)");
    let mut shown = 0;
    for (obs, truth) in out.observations.iter().zip(&out.truth) {
        if !obs.record.apps.contains_key(&campaign_app) {
            continue;
        }
        let p = detector.suspicion_proba(obs, campaign_app);
        println!(
            "{:<10} {:<10} {:>12.3}",
            obs.record.install_id.to_string(),
            truth.persona.cohort().label(),
            p
        );
        shown += 1;
        if shown >= 12 {
            println!("…");
            break;
        }
    }
}

fn describe_app(out: &racketstore::StudyOutput, app: AppId, title: &str) {
    let meta = out.fleet.catalog.app(app);
    let hosts_worker = out
        .cohort(Cohort::Worker)
        .filter(|o| o.record.apps.contains_key(&app))
        .count();
    let hosts_regular = out
        .cohort(Cohort::Regular)
        .filter(|o| o.record.apps.contains_key(&app))
        .count();
    // Install-to-review delays from device accounts.
    let mut delays = Vec::new();
    for obs in &out.observations {
        let Some(info) = obs.record.apps.get(&app) else {
            continue;
        };
        for r in obs.reviews_for(app) {
            let d = r.posted_at.signed_delta_secs(info.install_time);
            if d >= 0 {
                delays.push(d as f64 / 86_400.0);
            }
        }
    }
    println!("--- {title}: {} ({}) ---", meta.package, app);
    println!(
        "  store reviews: {}, installed on {hosts_worker} worker / {hosts_regular} regular devices",
        out.fleet.store.public_review_count(app),
    );
    if let Some(s) = racket_stats::Summary::of(&delays) {
        println!(
            "  install→review delay over {} fleet reviews: {}",
            s.n,
            s.paper_style()
        );
    } else {
        println!("  no reviews from fleet devices");
    }
    println!();
}
