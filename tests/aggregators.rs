//! Property suite for the online aggregators behind the streaming engine.
//!
//! The streaming feature state (ARCHITECTURE.md §7) is built from the
//! aggregators in `racket_types::online` and the per-app ingest-time
//! aggregates in `racket_collect::stream`. These properties pin the two
//! algebraic laws the engine depends on:
//!
//! * **fold is order-insensitive after coalescing** — exact (bitwise) for
//!   the integer/set/min-max aggregates under any permutation of the
//!   input; within a ULP-scaled tolerance for Welford, whose running mean
//!   is a float recurrence;
//! * **merge is associative with the empty aggregate as identity** (and
//!   commutative for everything except [`GapAccum`], whose append is
//!   defined on adjacent time ranges) — so state built over shards can be
//!   combined in any grouping.
//!
//! Welford is additionally checked against the two-pass reference
//! mean/variance, the accuracy contract its rustdoc promises.

use proptest::prelude::*;
use racket_collect::{AppStream, StreamAggregates};
use racket_types::{AppId, Distinct, GapAccum, GoogleId, MinMax, Rating, SimTime, Welford};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Tolerance for comparing a Welford statistic against a reference value:
/// a small multiple of one ULP at the magnitude of the data, scaled by
/// how many rounding steps the fold performed.
fn welford_tol(values: &[f64]) -> f64 {
    let mag = values.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    8.0 * values.len().max(1) as f64 * mag * f64::EPSILON
}

fn two_pass(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

fn shuffled(values: &[f64], seed: u64) -> Vec<f64> {
    let mut v = values.to_vec();
    v.shuffle(&mut StdRng::seed_from_u64(seed));
    v
}

fn fold_welford(values: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &v in values {
        w.fold(v);
    }
    w
}

fn fold_minmax(values: &[f64]) -> MinMax {
    let mut m = MinMax::new();
    for &v in values {
        m.fold(v);
    }
    m
}

fn fold_distinct(values: &[u32]) -> Distinct<u32> {
    let mut d = Distinct::new();
    for &v in values {
        d.fold(v);
    }
    d
}

proptest! {
    #[test]
    fn welford_matches_two_pass_reference(
        values in collection::vec(-1e9f64..1e9, 1..64),
    ) {
        let w = fold_welford(&values);
        let (mean, var) = two_pass(&values);
        let tol = welford_tol(&values);
        prop_assert!((w.mean - mean).abs() <= tol,
            "mean {} vs two-pass {} (tol {tol:e})", w.mean, mean);
        // Variance compounds squared magnitudes; scale the tolerance.
        let var_tol = tol * welford_tol(&values) / f64::EPSILON;
        prop_assert!((w.variance() - var).abs() <= var_tol,
            "variance {} vs two-pass {} (tol {var_tol:e})", w.variance(), var);
        prop_assert_eq!(w.count, values.len() as u64);
    }

    #[test]
    fn welford_fold_is_order_insensitive_within_tolerance(
        values in collection::vec(-1e6f64..1e6, 1..64),
        seed in any::<u64>(),
    ) {
        let a = fold_welford(&values);
        let b = fold_welford(&shuffled(&values, seed));
        let tol = welford_tol(&values);
        prop_assert!((a.mean - b.mean).abs() <= tol);
        prop_assert!((a.variance() - b.variance()).abs() <= tol * welford_tol(&values) / f64::EPSILON);
        prop_assert_eq!(a.count, b.count);
    }

    #[test]
    fn welford_merge_is_associative_commutative_with_identity(
        values in collection::vec(-1e6f64..1e6, 0..48),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        let n = values.len();
        let (mut i, mut j) = (cut_a as usize % (n + 1), cut_b as usize % (n + 1));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let (a, b, c) = (
            fold_welford(&values[..i]),
            fold_welford(&values[i..j]),
            fold_welford(&values[j..]),
        );
        let tol = welford_tol(&values);
        let close = |x: &Welford, y: &Welford| {
            x.count == y.count
                && (x.mean - y.mean).abs() <= tol
                && (x.m2 - y.m2).abs() <= tol * welford_tol(&values) / f64::EPSILON
        };

        // Associativity: (a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c).
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert!(close(&left, &right), "assoc: {left:?} vs {right:?}");

        // Commutativity: b ⊕ a ≈ a ⊕ b.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!(close(&ab, &ba), "comm: {ab:?} vs {ba:?}");

        // The empty aggregate is a two-sided identity, exactly.
        let mut left_id = Welford::new();
        left_id.merge(&a);
        prop_assert_eq!(left_id, a);
        let mut right_id = a;
        right_id.merge(&Welford::new());
        prop_assert_eq!(right_id, a);
    }

    #[test]
    fn minmax_is_exact_under_permutation_and_shard_split(
        values in collection::vec(-1e12f64..1e12, 0..64),
        seed in any::<u64>(),
        cut in any::<u16>(),
    ) {
        let whole = fold_minmax(&values);

        // Any permutation folds to the bitwise-identical aggregate.
        prop_assert_eq!(fold_minmax(&shuffled(&values, seed)), whole);

        // Any shard split merges back to the whole, and merge commutes.
        let i = cut as usize % (values.len() + 1);
        let (lo, hi) = (fold_minmax(&values[..i]), fold_minmax(&values[i..]));
        let mut merged = lo;
        merged.merge(&hi);
        prop_assert_eq!(merged, whole);
        let mut swapped = hi;
        swapped.merge(&lo);
        prop_assert_eq!(swapped, whole);

        // Empty identity.
        let mut id = MinMax::new();
        id.merge(&whole);
        prop_assert_eq!(id, whole);
    }

    #[test]
    fn distinct_is_exact_under_permutation_and_shard_split(
        values in collection::vec(0u32..200, 0..96),
        seed in any::<u64>(),
        cut in any::<u16>(),
    ) {
        let whole = fold_distinct(&values);
        let mut v = values.clone();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(fold_distinct(&v), whole.clone());

        let i = cut as usize % (values.len() + 1);
        let (lo, hi) = (fold_distinct(&values[..i]), fold_distinct(&values[i..]));
        let mut merged = lo.clone();
        merged.merge(&hi);
        prop_assert_eq!(merged, whole.clone());
        let mut swapped = hi;
        swapped.merge(&lo);
        prop_assert_eq!(swapped, whole);
    }

    #[test]
    fn gap_append_is_associative_over_any_three_way_split(
        mut times in collection::vec(0u64..1_000_000, 0..64),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        times.sort_unstable();
        let n = times.len();
        let (mut i, mut j) = (cut_a as usize % (n + 1), cut_b as usize % (n + 1));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let fold = |ts: &[u64]| {
            let mut g = GapAccum::new();
            for &t in ts {
                g.fold(t);
            }
            g
        };
        let (a, b, c) = (fold(&times[..i]), fold(&times[i..j]), fold(&times[j..]));
        let whole = fold(&times);

        // ((a + b) + c) == (a + (b + c)) == whole fold, exactly.
        let mut left = a;
        left.append(&b);
        left.append(&c);
        prop_assert_eq!(left, whole);
        let mut bc = b;
        bc.append(&c);
        let mut right = a;
        right.append(&bc);
        prop_assert_eq!(right, whole);

        // Empty identity on both sides.
        let mut id = GapAccum::new();
        id.append(&whole);
        prop_assert_eq!(id, whole);
        let mut right_id = whole;
        right_id.append(&GapAccum::new());
        prop_assert_eq!(right_id, whole);
    }
}

/// `GapAccum::append` is deliberately *not* commutative: gaps are defined
/// on the coalesced event order, so appending ranges out of order is a
/// caller bug and panics rather than silently producing a wrong aggregate.
#[test]
#[should_panic(expected = "start after")]
fn gap_append_rejects_out_of_order_ranges() {
    let mut early = GapAccum::new();
    early.fold(10);
    early.fold(20);
    let mut late = GapAccum::new();
    late.fold(100);
    late.append(&early);
}

/// Canonical view of a [`StreamAggregates`] for equality checks (its
/// internal map is a `HashMap`; render in sorted order). The campaign
/// and text sketches ride along so the merge algebra is pinned for both
/// lockstep-detection families (install events and review text).
fn canon(
    s: &StreamAggregates,
) -> (
    Vec<(AppId, AppStream)>,
    u64,
    u64,
    racket_campaign::CampaignSketch,
    racket_text::TextSketch,
) {
    let per_app: BTreeMap<AppId, AppStream> = s.apps().map(|(k, v)| (*k, *v)).collect();
    (
        per_app.into_iter().collect(),
        s.n_install_events,
        s.n_uninstall_events,
        s.campaign().clone(),
        s.text().clone(),
    )
}

/// Review-text pool for [`Op::Review`]: a small fixed vocabulary so
/// shards frequently fold *identical* reviews (exercising the text
/// sketch's set semantics under merge), with near-duplicates and an
/// empty text in the mix.
const REVIEW_TEXTS: [&str; 6] = [
    "great app works perfectly",
    "great app works perfectly!",
    "crashes a lot, one star",
    "does what it says",
    "best app ever best app ever",
    "",
];

/// One ingest-time event against a [`StreamAggregates`].
#[derive(Debug, Clone, Copy)]
enum Op {
    Install(u8, u32),
    Uninstall(u8, u32),
    Foreground(u8),
    Review(u8, u8, u32, u8, u8),
}

fn apply(s: &mut StreamAggregates, op: Op) {
    match op {
        Op::Install(app, t) => s.note_install(AppId(app as u32), SimTime::from_secs(t as u64)),
        Op::Uninstall(app, t) => s.note_uninstall(AppId(app as u32), SimTime::from_secs(t as u64)),
        Op::Foreground(app) => s.note_foreground(AppId(app as u32)),
        Op::Review(app, who, t, stars, text) => s.note_review(
            AppId(app as u32),
            GoogleId(who as u64),
            SimTime::from_secs(t as u64),
            Rating::new(stars).expect("strategy stays in 1..=5"),
            REVIEW_TEXTS[text as usize % REVIEW_TEXTS.len()],
        ),
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, any::<u32>()).prop_map(|(a, t)| Op::Install(a, t)),
        (0u8..6, any::<u32>()).prop_map(|(a, t)| Op::Uninstall(a, t)),
        (0u8..6).prop_map(Op::Foreground),
        (0u8..6, 0u8..4, any::<u32>(), 1u8..=5, 0u8..8)
            .prop_map(|(a, w, t, r, x)| Op::Review(a, w, t, r, x)),
    ]
}

proptest! {
    #[test]
    fn stream_aggregates_merge_is_associative_commutative_with_identity(
        ops in collection::vec(arb_op(), 0..64),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        let n = ops.len();
        let (mut i, mut j) = (cut_a as usize % (n + 1), cut_b as usize % (n + 1));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let fold = |slice: &[Op]| {
            let mut s = StreamAggregates::new();
            for &op in slice {
                apply(&mut s, op);
            }
            s
        };
        let (a, b, c) = (fold(&ops[..i]), fold(&ops[i..j]), fold(&ops[j..]));
        let whole = fold(&ops);

        // Sharded folding merges back to the single-pass aggregate…
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        prop_assert_eq!(canon(&left), canon(&whole));

        // …in any grouping…
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(canon(&right), canon(&whole));

        // …and any order (counters add, the uninstall latch takes max).
        let mut reversed = c;
        reversed.merge(&b);
        reversed.merge(&a);
        prop_assert_eq!(canon(&reversed), canon(&whole));

        // Empty identity on both sides.
        let mut id = StreamAggregates::new();
        id.merge(&whole);
        prop_assert_eq!(canon(&id), canon(&whole));
        let mut right_id = whole.clone();
        right_id.merge(&StreamAggregates::new());
        prop_assert_eq!(canon(&right_id), canon(&whole));
    }
}
