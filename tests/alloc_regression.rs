//! Steady-state allocation pin for the simulator hot path.
//!
//! The lane engine's contract (ARCHITECTURE.md §12) is that a steady-state
//! device-day — plan, poll snapshots at every action boundary, apply —
//! performs (near-)zero heap allocations: every buffer involved
//! (`LaneScratch` action/shuffle/index vectors, the pooled `SnapshotBatch`
//! and its inner `install_events` / `accounts` / `stopped_apps` vectors,
//! the collector's delta baselines) is reused across days. The only
//! allocations left are inherent ground-truth growth: the device event
//! log's amortised doubling and the per-app usage-day set gaining one
//! entry per (app, day). This test replays the driver's lane-day loop
//! under a counting allocator and pins the per-day allocation count to a
//! small constant; the pre-overhaul path (per-day index rebuilds, fresh
//! `Vec<Snapshot>` per poll, fresh delta vector per fast tick) costs
//! thousands per day and trips the pin immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use racket_agents::{apply_action_collecting, DeviceAgent, LaneScratch, PersonaParams};
use racket_collect::{CollectorConfig, SnapshotBatch, SnapshotCollector};
use racket_device::{Device, DeviceModel};
use racket_playstore::{AppCatalog, CatalogConfig, GoogleIdDirectory, ReviewStore};
use racket_types::{AndroidId, DeviceId, InstallId, ParticipantId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every allocation (and reallocation) made through the global
/// allocator. Deallocations are not interesting here: the pin is on how
/// often the hot path *asks* for memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Ceiling on allocations per steady-state lane-day. Measured ~2–6/day
/// (usage-day set nodes plus rare event-log doublings); the bound leaves
/// headroom for allocator-library jitter while staying two orders of
/// magnitude under the pre-overhaul cost.
const MAX_ALLOCS_PER_DAY: u64 = 64;

#[test]
fn steady_state_lane_day_is_allocation_free() {
    // An opens-only persona: zero install/uninstall churn and zero review
    // propensity isolates the steady state (no package events, so even the
    // collector's delta scan short-circuits on the package stamp). Daily
    // opens stay at the regular-user rate — the busiest allocation-free
    // part of a real day.
    let mut params = PersonaParams::regular();
    params.daily_installs = racket_agents::ClampedLogNormal::new(1.0, 0.0, 0.0, 0.0);
    params.daily_uninstalls = racket_agents::ClampedLogNormal::new(1.0, 0.0, 0.0, 0.0);
    params.personal_review_prob = 0.0;
    params.enthusiast_prob = 0.0;

    let catalog = AppCatalog::generate(&CatalogConfig::default());
    let mut store = ReviewStore::new();
    let mut directory = GoogleIdDirectory::new();
    let mut ids = racket_agents::IdAllocator::default();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(1));
    let mut agent = DeviceAgent::with_params(params, &mut rng);

    let day0 = SimTime::from_days(30);
    let horizon = SimTime::from_days(120);
    agent.setup_history(
        &mut device,
        &catalog,
        &mut store,
        &mut directory,
        &mut ids,
        day0,
        horizon,
        &mut rng,
    );

    let mut scratch = LaneScratch::new();
    scratch.seed_indexes(&device, &catalog, racket_types::Persona::Regular);
    // Thinned cadence keeps the debug-mode test quick; the allocation
    // contract is cadence-independent (each tick reuses the same pools).
    let config = CollectorConfig {
        fast_period_secs: 60,
        slow_period_secs: 600,
        collect_reviews: false,
    };
    let mut collector = SnapshotCollector::new(config, InstallId(1), ParticipantId(1));
    let mut batch = SnapshotBatch::new();

    const WARMUP_DAYS: u64 = 5;
    const MEASURED_DAYS: u64 = 50;
    let mut snapshots_seen = 0usize;
    let mut measured_start = 0u64;

    for day in 0..(WARMUP_DAYS + MEASURED_DAYS) {
        if day == WARMUP_DAYS {
            measured_start = ALLOCATIONS.load(Ordering::Relaxed);
        }
        let day_start = day0 + SimDuration::from_days(day);
        let day_end = day_start + SimDuration::from_days(1);
        scratch.begin_day();
        agent.plan_day_into(
            &device,
            &catalog,
            day_start,
            horizon,
            &mut rng,
            &mut scratch,
        );
        let actions = std::mem::take(&mut scratch.actions);
        for ta in &actions {
            if ta.time >= day_end {
                continue;
            }
            batch.clear();
            collector.poll_into(&device, ta.time, &mut batch);
            snapshots_seen += batch.len();
            apply_action_collecting(&mut device, &mut scratch.reviews, &catalog, ta, &mut rng);
        }
        batch.clear();
        let last_tick = SimTime::from_secs(day_end.as_secs() - 1);
        collector.poll_into(&device, last_tick, &mut batch);
        snapshots_seen += batch.len();
        scratch.actions = actions;
    }

    let measured = ALLOCATIONS.load(Ordering::Relaxed) - measured_start;
    let per_day = measured / MEASURED_DAYS;
    assert!(
        snapshots_seen > 10_000,
        "harness must actually exercise the collector (saw {snapshots_seen} snapshots)"
    );
    assert!(
        scratch.reviews.is_empty(),
        "opens-only persona must not produce reviews"
    );
    assert!(
        per_day <= MAX_ALLOCS_PER_DAY,
        "steady-state lane-day allocated {per_day}×/day (total {measured} over \
         {MEASURED_DAYS} days); the hot path has regressed past the \
         {MAX_ALLOCS_PER_DAY}/day pin"
    );
}
