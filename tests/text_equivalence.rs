//! Differential harness for the review-text engine: streaming must equal
//! batch, and turning text on must not perturb anything else.
//!
//! Two contracts are pinned here (ARCHITECTURE.md §13):
//!
//! 1. **No perturbation.** Review-text generation draws from a dedicated
//!    keyed stream family (`TEXT_STREAM_SALT`) and consumes *zero* values
//!    from the device/persona RNG streams. A study with `review_text`
//!    enabled must therefore reproduce the text-off study byte-for-byte
//!    in every pre-existing fingerprint — data, streaming feature state,
//!    server stats — with the review columns strictly additive. No golden
//!    pin anywhere in the repository is re-baselined for text.
//!
//! 2. **Streaming ≡ batch.** The per-install [`racket_text::TextSketch`]
//!    folded review-by-review at snapshot-ingest time must be
//!    byte-identical to the sketch rebuilt in batch from the columnar
//!    review family — across thread counts (sharded ingest merges
//!    sketches), delivery paths (direct, framed wire, async reactor),
//!    fault plans (replays must never double-fold a review row) and
//!    fleet compositions (organic-only and campaign-carrying).
//!
//! Scenarios pin `RAYON_NUM_THREADS` (process-global), so the matrix
//! lives in one `#[test]` and `check.sh` runs this binary with
//! `--test-threads=1` at worker counts 1 and 8; the ambient test is
//! named to sort first, before anything touches the variable.

mod common;

use common::{
    assert_text_stream_equals_batch, data_fingerprint, fingerprint, small_config,
    streaming_fingerprint, text_campaign_config, text_config, text_fingerprint, with_threads,
};
use racket_agents::PacingStrategy;
use racket_collect::FaultPlan;
use racketstore::campaign::batch_report;
use racketstore::study::{CollectionPath, Study, StudyConfig};

/// A text fingerprint is vacuous when no install carried any review text;
/// the header line renders the texted-install count first.
fn is_vacuous(text_fp: &str) -> bool {
    text_fp.starts_with("streaming:texted_installs=0 ")
}

/// Ambient thread pool (no pinning). Pins contract 1 — the text-off study
/// is byte-identical whether or not the generator ran — and contract 2 on
/// the direct path.
#[test]
fn ambient_text_on_study_reproduces_text_off_bytes() {
    let off = Study::new(small_config(CollectionPath::Direct)).run();
    let on = Study::new(text_config(CollectionPath::Direct)).run();

    // Contract 1: everything the pre-text fingerprints can see is
    // byte-identical — enabling text never perturbs a device RNG stream,
    // a snapshot, an aggregate or a feature bit.
    assert_eq!(
        data_fingerprint(&off),
        data_fingerprint(&on),
        "enabling review text perturbed the study's data output"
    );
    assert_eq!(
        fingerprint(&off),
        fingerprint(&on),
        "enabling review text perturbed the server stats"
    );
    assert_eq!(
        streaming_fingerprint(&off),
        streaming_fingerprint(&on),
        "enabling review text perturbed the streaming feature state"
    );

    // The review columns are strictly additive: absent when off, present
    // and non-vacuous when on.
    assert!(
        is_vacuous(&text_fingerprint(&off)),
        "text-off study grew review text from nowhere"
    );
    assert!(
        !is_vacuous(&text_fingerprint(&on)),
        "text-on study generated no review text (vacuous scenario)"
    );

    // Contract 2 on both: an empty index trivially, a populated one really.
    assert_text_stream_equals_batch(&off, "ambient/direct/text-off");
    assert_text_stream_equals_batch(&on, "ambient/direct/text-on");
}

#[test]
fn matrix_streaming_text_equals_batch_everywhere() {
    struct Scenario {
        name: &'static str,
        config: fn(CollectionPath) -> StudyConfig,
        path: CollectionPath,
        faults: FaultPlan,
    }
    fn campaign(path: CollectionPath) -> StudyConfig {
        text_campaign_config(path, 2, PacingStrategy::Burst)
    }
    let scenarios = [
        Scenario {
            name: "organic/direct/clean",
            config: text_config,
            path: CollectionPath::Direct,
            faults: FaultPlan::none(),
        },
        Scenario {
            name: "organic/wire/clean",
            config: text_config,
            path: CollectionPath::Wire,
            faults: FaultPlan::none(),
        },
        Scenario {
            name: "organic/async/clean",
            config: text_config,
            path: CollectionPath::AsyncWire,
            faults: FaultPlan::none(),
        },
        Scenario {
            name: "campaign/direct/clean",
            config: campaign,
            path: CollectionPath::Direct,
            faults: FaultPlan::none(),
        },
        Scenario {
            name: "campaign/wire/hostile",
            config: campaign,
            path: CollectionPath::Wire,
            faults: FaultPlan::hostile(),
        },
        Scenario {
            name: "campaign/async/hostile",
            config: campaign,
            path: CollectionPath::AsyncWire,
            faults: FaultPlan::hostile(),
        },
    ];
    // One canonical text fingerprint per fleet composition: thread count,
    // delivery path and fault plan must all be invisible.
    let mut canonical: [Option<String>; 2] = [None, None];
    for threads in ["1", "2", "8"] {
        for s in &scenarios {
            let context = format!("{} @ {threads} threads", s.name);
            let (fp, out) = with_threads(threads, || {
                let mut config = (s.config)(s.path);
                config.faults = s.faults;
                let out = Study::new(config).run();
                (text_fingerprint(&out), out)
            });
            assert!(!is_vacuous(&fp), "{context}: no review text generated");
            assert_text_stream_equals_batch(&out, &context);
            let which = usize::from(s.name.starts_with("campaign"));
            match &canonical[which] {
                None => canonical[which] = Some(fp),
                Some(c) => assert_eq!(c, &fp, "{context}: text state diverged"),
            }
            if s.name.starts_with("campaign") {
                // The text-aware detector ran over real candidates, and
                // its batch recomputation (columnar review family in,
                // same kernel) reproduces the incremental report exactly.
                assert!(
                    out.campaigns.n_text_candidate_pairs > 0,
                    "{context}: near-duplicate index produced no candidates"
                );
                assert_eq!(batch_report(&out), out.campaigns, "{context}");
            }
        }
    }
}
