//! Cross-crate property-based tests (proptest).
//!
//! Invariants pinned here:
//! * the wire codec round-trips arbitrary messages, in arbitrary chunkings,
//!   and never accepts a frame with single-bit corruption anywhere the
//!   CRC covers (header fields and payload alike);
//! * LZSS round-trips arbitrary byte strings;
//! * SMOTE balances exactly and synthesizes points inside the minority
//!   class's bounding box;
//! * stratified folds partition every index exactly once and preserve the
//!   class ratio within one sample;
//! * descriptive statistics are order-invariant;
//! * install coalescing never merges overlapping intervals and is
//!   permutation-stable in group count;
//! * the review-text kernels (ARCHITECTURE.md §13): SimHash is
//!   permutation-insensitive and multiset-scale-invariant, Hamming
//!   distance is a metric, MinHash signatures distribute over set union
//!   and estimate Jaccard within a statistical error band, and the
//!   deterministic review-text generator is a pure function of its keys.

use proptest::prelude::*;
use racket_collect::wire::{FrameCodec, Message};
use racket_collect::{coalesce_installs, CandidateInstall};
use racket_ml::{smote, stratified_folds, Dataset};
use racket_types::{AccountId, AndroidId, AppId, InstallId, ParticipantId, SimTime, TimeInterval};
use std::collections::HashSet;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (100_000u32..=999_999, 1_000_000_000u64..=9_999_999_999).prop_map(|(p, i)| {
            Message::SignIn {
                participant: ParticipantId(p),
                install: InstallId(i),
            }
        }),
        any::<bool>().prop_map(|accepted| Message::SignInAck { accepted }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(i, f, fast, payload)| Message::SnapshotUpload {
                install: InstallId(i),
                file_id: f,
                fast,
                payload,
            }),
        (any::<u64>(), any::<[u8; 32]>()).prop_map(|(f, h)| Message::UploadAck {
            file_id: f,
            sha256: h
        }),
        (any::<u16>(), ".{0,64}").prop_map(|(code, detail)| Message::Error { code, detail }),
    ]
}

proptest! {
    #[test]
    fn codec_round_trips_any_message(msg in arb_message()) {
        let bytes = msg.encode();
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        let decoded = codec.try_decode_message().unwrap().expect("complete");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn codec_round_trips_under_any_chunking(
        msg in arb_message(),
        chunk in 1usize..64,
    ) {
        let bytes = msg.encode();
        let mut codec = FrameCodec::new();
        let mut decoded = None;
        for part in bytes.chunks(chunk) {
            codec.feed(part);
            if let Some(m) = codec.try_decode_message().unwrap() {
                decoded = Some(m);
            }
        }
        prop_assert_eq!(decoded.expect("complete"), msg);
    }

    #[test]
    fn codec_detects_payload_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip_byte: usize,
        flip_bit in 0u8..8,
    ) {
        let msg = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 1,
            fast: true,
            payload,
        };
        let mut bytes = msg.encode();
        // Corrupt one bit anywhere the v2 CRC covers: version, type, seq,
        // length or payload (bytes 2.. of the 12-byte header; trailer 4).
        let crc_covered_start = 2;
        let payload_end = bytes.len() - 4;
        let idx = crc_covered_start + flip_byte % (payload_end - crc_covered_start);
        bytes[idx] ^= 1 << flip_bit;
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        // A flip in the length field may leave the decoder waiting for
        // bytes that never come (resolved by retry timeouts at the session
        // layer); every other flip errors. Either way, corruption must
        // never yield an accepted frame.
        prop_assert!(
            !matches!(codec.try_decode(), Ok(Some(_))),
            "corruption must not pass CRC"
        );
    }

    #[test]
    fn lzss_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = racket_collect::lzss::compress(&data);
        prop_assert_eq!(racket_collect::lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn sha256_distinguishes_any_two_unequal_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(racket_collect::sha256(&a), racket_collect::sha256(&b));
    }

    #[test]
    fn smote_balances_and_stays_in_minority_box(
        seed in any::<u64>(),
        n_minority in 2usize..8,
        n_majority in 8usize..30,
    ) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_majority {
            x.push(vec![i as f64, 0.0]);
            y.push(0u8);
        }
        for i in 0..n_minority {
            x.push(vec![100.0 + i as f64, 50.0 + (i % 3) as f64]);
            y.push(1u8);
        }
        let data = Dataset::new(x, y, vec!["a".into(), "b".into()]);
        let balanced = smote(&data, 3, seed);
        prop_assert_eq!(balanced.n_positive(), balanced.n_negative());
        // Synthetic rows interpolate minority points: inside the box.
        for row in &balanced.x[data.len()..] {
            prop_assert!(row[0] >= 100.0 - 1e-9 && row[0] <= 100.0 + n_minority as f64);
            prop_assert!(row[1] >= 50.0 - 1e-9 && row[1] <= 52.0 + 1e-9);
        }
    }

    #[test]
    fn stratified_folds_partition_exactly(
        seed in any::<u64>(),
        n in 10usize..200,
        k in 2usize..8,
    ) {
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
        let folds = stratified_folds(&y, k, seed);
        prop_assert_eq!(folds.len(), n);
        prop_assert!(folds.iter().all(|&f| f < k));
        // Every class is spread across folds as evenly as possible.
        for class in [0u8, 1u8] {
            let mut counts = vec![0usize; k];
            for i in 0..n {
                if y[i] == class {
                    counts[folds[i]] += 1;
                }
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            prop_assert!(max - min <= 1, "class {class} spread {counts:?}");
        }
    }

    #[test]
    fn summary_is_order_invariant(mut data in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let a = racket_stats::Summary::of(&data).unwrap();
        data.reverse();
        let b = racket_stats::Summary::of(&data).unwrap();
        prop_assert!((a.mean - b.mean).abs() < 1e-6);
        prop_assert_eq!(a.median, b.median);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
    }

    #[test]
    fn coalescing_respects_interval_overlap(
        starts in proptest::collection::vec(0u64..100, 2..12),
    ) {
        // All candidates share one Android ID; only interval overlap can
        // keep them apart.
        let candidates: Vec<CandidateInstall> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| CandidateInstall {
                install_id: InstallId(i as u64),
                participant: ParticipantId(100_000 + i as u32),
                android_id: Some(AndroidId(1)),
                interval: TimeInterval::new(
                    SimTime::from_days(s),
                    SimTime::from_days(s + 5),
                ),
                apps: [(AppId(1), SimTime::EPOCH)].into_iter().collect(),
                accounts: [AccountId(1)].into_iter().collect(),
            })
            .collect();
        let groups = coalesce_installs(candidates.clone());
        // Within every group, intervals must be pairwise disjoint.
        for g in &groups {
            for i in 0..g.installs.len() {
                for j in i + 1..g.installs.len() {
                    prop_assert!(
                        !g.installs[i].interval.overlaps(&g.installs[j].interval),
                        "merged overlapping installs"
                    );
                }
            }
        }
        // Total installs preserved.
        let total: usize = groups.iter().map(|g| g.installs.len()).sum();
        prop_assert_eq!(total, candidates.len());
    }

    #[test]
    fn jaccard_bounded_and_symmetric(
        a in proptest::collection::hash_set(0u32..50, 0..20),
        b in proptest::collection::hash_set(0u32..50, 0..20),
    ) {
        let ab = racket_stats::jaccard(&a, &b);
        let ba = racket_stats::jaccard(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(ab, ba);
        if a == b {
            prop_assert_eq!(ab, 1.0);
        }
    }
}

#[test]
fn coalescing_group_count_is_permutation_stable() {
    let make = |id: u64, start: u64, android: u64| CandidateInstall {
        install_id: InstallId(id),
        participant: ParticipantId(100_000 + id as u32),
        android_id: Some(AndroidId(android)),
        interval: TimeInterval::new(SimTime::from_days(start), SimTime::from_days(start + 2)),
        apps: HashSet::new(),
        accounts: HashSet::new(),
    };
    let forward = vec![make(1, 0, 7), make(2, 3, 7), make(3, 6, 8), make(4, 9, 8)];
    let mut reversed = forward.clone();
    reversed.reverse();
    assert_eq!(
        coalesce_installs(forward).len(),
        coalesce_installs(reversed).len()
    );
}

// ---------------------------------------------------------------------------
// Review-text kernels (racket-text; ARCHITECTURE.md §13).
// ---------------------------------------------------------------------------

proptest! {
    /// SimHash is a per-bit majority vote over the shingle multiset, so
    /// it cannot see the order of the shingles, and repeating the whole
    /// multiset `m` times scales every vote tally by `m` without moving
    /// any sign — the two insensitivities the near-duplicate index
    /// relies on when reviews arrive in arbitrary ingest order.
    #[test]
    fn simhash_ignores_order_and_multiset_scaling(
        shingles in proptest::collection::vec(any::<u64>(), 0..48),
        seed in any::<u64>(),
        m in 1usize..4,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = racket_text::simhash64(shingles.iter().copied());
        let mut shuffled = shingles.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(racket_text::simhash64(shuffled.iter().copied()), base);
        let repeated: Vec<u64> = std::iter::repeat_n(shingles.clone(), m).flatten().collect();
        prop_assert_eq!(racket_text::simhash64(repeated), base);
    }

    /// Hamming distance over 64-bit SimHashes is a metric: identity,
    /// symmetry, the 64-bit range bound, and the triangle inequality
    /// (which justifies the banded LSH candidate recall argument).
    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        use racket_text::hamming;
        prop_assert_eq!(hamming(a, a), 0);
        prop_assert_eq!(hamming(a, b), hamming(b, a));
        prop_assert!(hamming(a, b) <= 64);
        prop_assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
    }

    /// MinHash signatures distribute over set union — the exact algebra
    /// the streaming fold depends on: observing shingles one at a time,
    /// in any order, with any duplication, then merging shard
    /// signatures, lands on the signature of the union.
    #[test]
    fn minhash_distributes_over_union(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let sig = |shingles: &[u64]| {
            let mut m = racket_text::MinHash::empty(32);
            for &s in shingles {
                m.observe(s);
            }
            m
        };
        let (sa, sb) = (sig(&a), sig(&b));
        let mut union: Vec<u64> = a.iter().chain(&b).copied().collect();
        union.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        // Duplicates are invisible: double every element.
        let doubled: Vec<u64> = union.iter().flat_map(|&s| [s, s]).collect();
        let su = sig(&doubled);
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(&merged, &su);
        // Merge commutes and the empty signature is an identity.
        let mut swapped = sb.clone();
        swapped.merge(&sa);
        prop_assert_eq!(&swapped, &su);
        let mut id = racket_text::MinHash::empty(32);
        id.merge(&su);
        prop_assert_eq!(&id, &su);
    }

    /// The Jaccard estimate is bounded, symmetric, and exact at the
    /// extremes (identical sets estimate 1.0).
    #[test]
    fn minhash_jaccard_estimate_is_bounded_and_symmetric(
        a in proptest::collection::hash_set(0u64..200, 1..30),
        b in proptest::collection::hash_set(0u64..200, 1..30),
    ) {
        let sig = |set: &std::collections::HashSet<u64>| {
            let mut m = racket_text::MinHash::empty(32);
            for &s in set {
                m.observe(s);
            }
            m
        };
        let (sa, sb) = (sig(&a), sig(&b));
        let ab = sa.estimate_jaccard(&sb);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(sb.estimate_jaccard(&sa), ab);
        prop_assert_eq!(sa.estimate_jaccard(&sa), 1.0);
        if a == b {
            prop_assert_eq!(ab, 1.0);
        }
    }

    /// The review-text generator is a pure function of its keys: two
    /// independently constructed generators agree byte-for-byte, and a
    /// different master seed moves the personal text (so studies at
    /// different seeds don't share review text verbatim).
    #[test]
    fn textgen_is_a_pure_function_of_its_keys(
        seed in any::<u64>(),
        google_id in any::<u64>(),
        app in any::<u64>(),
        stars in 1u8..=5,
    ) {
        let rating = racket_types::Rating::new(stars).unwrap();
        let g1 = racket_agents::TextGen::new(seed);
        let g2 = racket_agents::TextGen::new(seed);
        let text = g1.personal(google_id, app, rating);
        prop_assert_eq!(&g2.personal(google_id, app, rating), &text);
        prop_assert!(!text.is_empty());
        prop_assert_eq!(
            g1.campaign(7, app, 3, rating),
            g2.campaign(7, app, 3, rating)
        );
    }
}

/// MinHash's Jaccard estimator is unbiased with per-row match probability
/// equal to the true Jaccard similarity; at 32 rows one estimate has a
/// standard error of at most `sqrt(0.25/32) ≈ 0.088`. Averaged over 300
/// deterministic set pairs the mean absolute error must sit well inside
/// that band. Fully seeded, so this is a regression pin, not a flaky
/// statistical assertion.
#[test]
fn minhash_jaccard_mean_error_stays_in_band() {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
    let mut total_err = 0.0;
    let n_pairs = 300;
    for _ in 0..n_pairs {
        let n_shared = rng.gen_range(0..20);
        let n_only_a = rng.gen_range(1..15);
        let n_only_b = rng.gen_range(1..15);
        let mut next = || rng.gen::<u64>();
        let shared: Vec<u64> = (0..n_shared).map(|_| next()).collect();
        let mut ma = racket_text::MinHash::empty(32);
        let mut mb = racket_text::MinHash::empty(32);
        for &s in &shared {
            ma.observe(s);
            mb.observe(s);
        }
        for _ in 0..n_only_a {
            ma.observe(next());
        }
        for _ in 0..n_only_b {
            mb.observe(next());
        }
        // 64-bit draws collide with negligible probability: the true
        // Jaccard is the shared count over the union count.
        let truth = n_shared as f64 / (n_shared + n_only_a + n_only_b) as f64;
        total_err += (ma.estimate_jaccard(&mb) - truth).abs();
    }
    let mean_err = total_err / n_pairs as f64;
    assert!(
        mean_err < 0.08,
        "MinHash(32) mean |estimate - true Jaccard| = {mean_err:.4}, outside the error band"
    );
}
