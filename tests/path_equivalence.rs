//! The wire path (buffer → LZSS → frames → transport → decode → ack) must
//! deliver *exactly* the same data as direct in-process ingestion: the
//! study's server-side aggregates have to be identical bit for bit. This
//! pins the protocol stack against silent data loss or reordering.

use racketstore::study::{CollectionPath, Study, StudyConfig};

#[test]
fn wire_and_direct_paths_yield_identical_aggregates() {
    let mut wire_config = StudyConfig::test_scale();
    wire_config.path = CollectionPath::Wire;
    let mut direct_config = StudyConfig::test_scale();
    direct_config.path = CollectionPath::Direct;

    let wire = Study::new(wire_config).run();
    let direct = Study::new(direct_config).run();

    assert_eq!(wire.observations.len(), direct.observations.len());
    assert_eq!(wire.server_stats.snapshots, direct.server_stats.snapshots);
    assert_eq!(wire.reviews_crawled, direct.reviews_crawled);

    for (w, d) in wire.observations.iter().zip(&direct.observations) {
        assert_eq!(w.record.install_id, d.record.install_id);
        assert_eq!(w.record.n_fast, d.record.n_fast, "fast counts diverge");
        assert_eq!(w.record.n_slow, d.record.n_slow, "slow counts diverge");
        assert_eq!(w.record.snapshots_per_day, d.record.snapshots_per_day);
        assert_eq!(w.record.installed_now, d.record.installed_now);
        assert_eq!(w.record.stopped_apps, d.record.stopped_apps);
        assert_eq!(w.record.accounts, d.record.accounts);
        assert_eq!(w.record.install_events, d.record.install_events);
        assert_eq!(w.record.uninstall_events, d.record.uninstall_events);
        assert_eq!(w.record.foreground, d.record.foreground);
        assert_eq!(w.google_ids, d.google_ids);
        assert_eq!(w.reviews_by_app, d.reviews_by_app);
    }

    // The wire run must have actually exercised the protocol.
    assert!(wire.server_stats.files > 0);
    assert_eq!(direct.server_stats.files, 0);
}
