//! The resilient-transfer loop of §3 under a lossy channel: when transit
//! corrupts an upload, the CRC rejects the frame (or the hash ack
//! mismatches), the client keeps the file and retries until the server's
//! hash matches — no snapshot is ever lost or duplicated.

use racket_collect::transport::{recv_message, MemTransport, Transport};
use racket_collect::wire::{FrameCodec, Message};
use racket_collect::{CollectionServer, CollectorConfig, DataBuffer, SnapshotCollector};
use racket_device::{Device, DeviceModel};
use racket_types::{
    AndroidId, ApkHash, AppId, DeviceId, InstallId, ParticipantId, PermissionProfile, SimTime,
};

const P: ParticipantId = ParticipantId(123_456);
const I: InstallId = InstallId(1_000_000_000);

#[test]
fn corrupted_uploads_are_retried_until_acknowledged() {
    let mut server = CollectionServer::new([P]);
    server.handle(Message::SignIn {
        participant: P,
        install: I,
    });

    // A device with some snapshots buffered.
    let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(1));
    for app in 0..4u32 {
        device.install_app(
            AppId(app),
            SimTime::from_secs(u64::from(app)),
            PermissionProfile::default(),
            ApkHash([app as u8; 16]),
        );
    }
    let mut collector = SnapshotCollector::new(CollectorConfig::default(), I, P);
    let mut buffer = DataBuffer::new();
    for minute in 0..20 {
        for snap in collector.poll(&device, SimTime::from_mins(minute)) {
            buffer.push(&snap);
        }
    }
    buffer.flush();
    let total_files = buffer.pending_count();
    assert!(total_files >= 1);

    // Lossy channel: every 2nd chunk has one bit flipped.
    let (mut client, mut server_end) = MemTransport::pair();
    client.corrupt_every(2);

    let mut attempts = 0;
    let mut delivered = 0;
    while buffer.pending_count() > 0 {
        attempts += 1;
        assert!(attempts < 100, "retry loop did not converge");
        let f = buffer.pending().next().expect("pending file").clone();
        client
            .send(
                &Message::SnapshotUpload {
                    install: I,
                    file_id: f.file_id,
                    fast: f.fast,
                    payload: f.data.clone(),
                }
                .encode(),
            )
            .expect("send");
        // Server side: a corrupted frame fails CRC decode; the connection
        // would be dropped and the client retries on a fresh one.
        let mut codec = FrameCodec::new();
        match recv_message(&mut server_end, &mut codec) {
            Ok(Some(msg)) => {
                if let Some(Message::UploadAck { file_id, sha256 }) = server.handle(msg) {
                    if buffer.acknowledge(file_id, sha256) {
                        delivered += 1;
                    }
                }
            }
            Ok(None) => {}
            Err(_) => {
                // CRC failure: drain the channel residue (fresh connection).
                let mut sink = [0u8; 4096];
                while server_end.try_recv(&mut sink).unwrap_or(0) > 0 {}
            }
        }
    }

    assert_eq!(delivered, total_files);
    assert!(
        attempts > total_files,
        "corruption must have forced retries"
    );
    // Every snapshot arrived exactly once despite the lossy channel.
    let rec = server.record(I).expect("record");
    assert_eq!(rec.n_fast + rec.n_slow, server.stats().snapshots);
    assert_eq!(server.stats().files as usize, total_files);
    assert_eq!(
        server.stats().bad_uploads,
        0,
        "CRC caught corruption before parsing"
    );
}
