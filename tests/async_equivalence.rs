//! Sync/async driver equivalence: the reactor-driven collection plane is
//! a different front end, not a different protocol.
//!
//! Contract under test (ARCHITECTURE.md §8): a study driven through
//! `CollectionPath::AsyncWire` — every device lane holding a live
//! connection into the `AsyncCollectServer`, thread-per-core workers
//! multiplexing the fleet, bounded queues shedding under pressure — must
//! produce a data fingerprint and a streaming-state fingerprint
//! byte-identical to the synchronous loopback driver's, at every rayon
//! thread count, on a clean link and under the combined hostile fault
//! profile. Everything the async plane adds (sheds, stall sweeps, queue
//! depths, premature-retry duplicates) is observability, and none of it
//! appears in either fingerprint.
//!
//! The scenarios pin `RAYON_NUM_THREADS` (process-global), so the whole
//! matrix lives in one `#[test]`.

mod common;

use common::{data_fingerprint, small_config, streaming_fingerprint, with_threads};
use racket_collect::FaultPlan;
use racketstore::study::{CollectionPath, Study};

#[test]
fn async_driver_reproduces_the_sync_wire_study() {
    // The sync baseline is itself thread-invariant (tests/determinism.rs),
    // so one run anchors the whole matrix.
    let baseline = with_threads("1", || Study::new(small_config(CollectionPath::Wire)).run());
    let base_data = data_fingerprint(&baseline);
    let base_stream = streaming_fingerprint(&baseline);

    for threads in ["1", "2", "8"] {
        for (name, plan) in [
            ("clean", FaultPlan::none()),
            ("hostile", FaultPlan::hostile()),
        ] {
            let out = with_threads(threads, || {
                let mut config = small_config(CollectionPath::AsyncWire);
                config.faults = plan;
                Study::new(config).run()
            });
            assert_eq!(
                data_fingerprint(&out),
                base_data,
                "async/{name} @ {threads} threads: data diverged from the sync driver"
            );
            assert_eq!(
                streaming_fingerprint(&out),
                base_stream,
                "async/{name} @ {threads} threads: streaming state diverged"
            );
            // The async plane really ran: its sharded store reported
            // occupancy, and the hostile plan really injected faults.
            assert!(
                !out.metrics.shard_occupancy.is_empty(),
                "async/{name} @ {threads}: async plane ingests through shards"
            );
            match name {
                "clean" => assert_eq!(out.metrics.faults.total(), 0),
                _ => {
                    assert!(out.metrics.faults.total() > 0, "hostile plan was inert");
                    assert_eq!(
                        out.metrics.exchanges_exhausted, 0,
                        "async/hostile @ {threads}: retry budget exhausted"
                    );
                }
            }
        }
    }
}
