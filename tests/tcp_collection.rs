//! Multi-device collection over real TCP loopback: several clients sign
//! in concurrently, stream buffered snapshot files, and the threaded
//! server aggregates everything without loss.

use parking_lot::Mutex;
use racket_collect::transport::recv_message;
use racket_collect::wire::{FrameCodec, Message};
use racket_collect::{
    CollectionServer, CollectorConfig, DataBuffer, SnapshotCollector, TcpTransport, Transport,
};
use racket_device::{Device, DeviceModel};
use racket_types::{
    AndroidId, ApkHash, AppId, DeviceId, InstallId, ParticipantId, PermissionProfile, SimTime,
};
use std::sync::Arc;

const N_CLIENTS: usize = 4;

fn participant(i: usize) -> ParticipantId {
    ParticipantId(100_000 + i as u32)
}

fn install(i: usize) -> InstallId {
    InstallId(1_000_000_000 + i as u64)
}

#[test]
fn concurrent_tcp_clients_are_fully_ingested() {
    let server = Arc::new(Mutex::new(CollectionServer::new(
        (0..N_CLIENTS).map(participant),
    )));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_bg = Arc::clone(&server);
    let server_thread =
        std::thread::spawn(move || CollectionServer::serve_tcp(server_bg, listener, N_CLIENTS));

    let mut clients = Vec::new();
    for i in 0..N_CLIENTS {
        clients.push(std::thread::spawn(move || {
            let mut device = Device::new(
                DeviceId(i as u32),
                DeviceModel::generic(),
                AndroidId(i as u64),
            );
            for app in 0..3u32 {
                device.install_app(
                    AppId(i as u32 * 10 + app),
                    SimTime::from_secs(u64::from(app)),
                    PermissionProfile::default(),
                    ApkHash([app as u8; 16]),
                );
            }
            let mut transport = TcpTransport::connect(addr).expect("connect");
            let mut codec = FrameCodec::new();
            transport
                .send(
                    &Message::SignIn {
                        participant: participant(i),
                        install: install(i),
                    }
                    .encode(),
                )
                .expect("send sign-in");
            let ack = recv_message(&mut transport, &mut codec)
                .expect("recv")
                .expect("ack");
            assert_eq!(ack, Message::SignInAck { accepted: true });

            // 30 simulated minutes of snapshots.
            let mut collector =
                SnapshotCollector::new(CollectorConfig::default(), install(i), participant(i));
            let mut buffer = DataBuffer::new();
            for minute in 0..30 {
                for snap in collector.poll(&device, SimTime::from_mins(minute)) {
                    buffer.push(&snap);
                }
            }
            buffer.flush();
            let files: Vec<_> = buffer.pending().cloned().collect();
            assert!(!files.is_empty());
            for f in files {
                transport
                    .send(
                        &Message::SnapshotUpload {
                            install: install(i),
                            file_id: f.file_id,
                            fast: f.fast,
                            payload: f.data.clone(),
                        }
                        .encode(),
                    )
                    .expect("send upload");
                match recv_message(&mut transport, &mut codec)
                    .expect("recv")
                    .expect("reply")
                {
                    Message::UploadAck { file_id, sha256 } => {
                        assert!(buffer.acknowledge(file_id, sha256), "hash must match");
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            assert_eq!(buffer.pending_count(), 0);
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    server_thread
        .join()
        .expect("server thread")
        .expect("serve_tcp");

    let server = server.lock();
    let stats = server.stats();
    assert_eq!(stats.sign_ins, N_CLIENTS as u64);
    assert_eq!(stats.bad_uploads, 0);
    // Polled each minute for 30 minutes: one snapshot at t = 0 plus every
    // 5-second tick through t = 1740 → 349 fast; every 2 minutes → 15 slow.
    for i in 0..N_CLIENTS {
        let rec = server.record(install(i)).expect("record");
        assert_eq!(rec.n_fast, 349, "client {i}");
        assert_eq!(rec.n_slow, 15, "client {i}");
        assert_eq!(rec.apps.len(), 3);
    }
}

#[test]
fn unknown_participant_is_rejected_over_tcp() {
    let server = Arc::new(Mutex::new(CollectionServer::new([participant(0)])));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_bg = Arc::clone(&server);
    let handle = std::thread::spawn(move || CollectionServer::serve_tcp(server_bg, listener, 1));

    let mut transport = TcpTransport::connect(addr).expect("connect");
    let mut codec = FrameCodec::new();
    transport
        .send(
            &Message::SignIn {
                participant: ParticipantId(999_999), // never recruited
                install: InstallId(1_000_000_099),
            }
            .encode(),
        )
        .expect("send");
    let ack = recv_message(&mut transport, &mut codec)
        .expect("recv")
        .expect("ack");
    assert_eq!(ack, Message::SignInAck { accepted: false });
    drop(transport);
    handle.join().expect("thread").expect("serve");
    assert_eq!(server.lock().stats().rejected_sign_ins, 1);
}
