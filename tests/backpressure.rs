//! Backpressure regression suite: the async collection plane's bounded
//! per-connection queues must shed visibly, lose nothing, and leave no
//! trace in the data output.
//!
//! Contract under test (ARCHITECTURE.md §8, PROTOCOL.md "Concurrent
//! connections"): when a client floods uploads faster than its worker
//! drains them, the server sheds the excess with an explicit `Error{429}`
//! reply instead of buffering unboundedly. The shed is an invitation to
//! retry — after the client re-sends whatever was not acknowledged, every
//! file is ingested exactly once. The `server.load_shed` and
//! `server.queue_depth_peak` counters that record the episode are pure
//! observability: two runs of the same uploads, one squeezed through a
//! 1-deep queue and one through a roomy queue, must produce byte-identical
//! install records and protocol stats.

use racket_collect::wire::Message;
use racket_collect::{
    lzss, sha256, AsyncCollectServer, AsyncConn, AsyncServerConfig, FaultPlan, FrameCodec,
    ShardedIngest, SnapshotCollector,
};
use racket_obs::Registry;
use racket_types::metrics::keys;
use racket_types::{
    ApkHash, AppId, FastSnapshot, InstallDelta, InstallId, InstalledApp, ParticipantId,
    PermissionProfile, SimTime, Snapshot,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const P: ParticipantId = ParticipantId(123_456);
const I: InstallId = InstallId(1_000_000_001);
const N_FILES: u64 = 24;

/// One compressed single-snapshot upload payload, distinct per `t`.
fn payload(t: u64) -> Vec<u8> {
    let snap = Snapshot::Fast(FastSnapshot {
        install_id: I,
        participant_id: P,
        time: SimTime::from_secs(t),
        foreground_app: Some(AppId(1)),
        screen_on: true,
        battery_pct: 80,
        install_events: vec![InstallDelta::Installed(InstalledApp::fresh(
            AppId(1),
            SimTime::from_secs(0),
            PermissionProfile::default(),
            ApkHash([7; 16]),
        ))],
    });
    lzss::compress(&SnapshotCollector::serialize(&snap))
}

/// Drain replies until one decodes or the deadline passes.
fn recv_reply(conn: &mut AsyncConn, codec: &mut FrameCodec, timeout: Duration) -> Option<Message> {
    let deadline = Instant::now() + timeout;
    let mut buf = [0u8; 4096];
    loop {
        if let Ok(Some(m)) = codec.try_decode_message() {
            return Some(m);
        }
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        match conn.recv_deadline(&mut buf, deadline - now) {
            Ok(0) => return None,
            Ok(n) => codec.feed(&buf[..n]),
            Err(_) => {} // deadline re-checked above
        }
    }
}

/// Everything one run produces that the data contract covers, plus the
/// observability counters it must NOT cover.
struct PlaneRun {
    /// Canonical rendering of the drained install records.
    record_fp: String,
    snapshots: u64,
    files: u64,
    sign_ins: u64,
    bad_uploads: u64,
    load_sheds: u64,
    queue_depth_peak: u64,
}

/// Push the same `N_FILES` uploads through an async plane with the given
/// queue limit, retrying whatever gets shed until everything is acked.
fn run_plane(queue_limit: usize) -> PlaneRun {
    let registry = Registry::new();
    let store = Arc::new(ShardedIngest::new(4));
    let srv = AsyncCollectServer::start(
        [P],
        Arc::clone(&store),
        AsyncServerConfig {
            workers: 1,
            queue_limit,
            ..AsyncServerConfig::default()
        },
    );
    let mut conn = srv.connect(FaultPlan::none(), 9);
    let mut codec = FrameCodec::strict();
    let mut seq = 0u32;

    conn.send(
        &Message::SignIn {
            participant: P,
            install: I,
        }
        .encode_seq(seq),
    )
    .unwrap();
    seq += 1;
    let ack = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)).expect("sign-in ack");
    assert_eq!(ack, Message::SignInAck { accepted: true });

    // Flood every file at once (overfilling a tiny queue), then keep
    // re-sending whatever was not acknowledged. On a clean link every
    // sent frame gets exactly one reply — an ack if admitted, a 429 if
    // shed — so counting replies per round keeps the loop deterministic.
    let mut unacked: HashSet<u64> = (1..=N_FILES).collect();
    let mut expected: std::collections::HashMap<u64, [u8; 32]> = Default::default();
    for round in 0..100 {
        assert!(round < 99, "files should ack within the retry budget");
        let sent = unacked.len();
        for &file_id in &unacked {
            let data = payload(file_id * 10);
            let digest = sha256(&data);
            let msg = Message::SnapshotUpload {
                install: I,
                file_id,
                fast: true,
                payload: data,
            };
            conn.send(&msg.encode_seq(seq)).unwrap();
            seq += 1;
            expected.insert(file_id, digest);
        }
        let mut replies = 0;
        while replies < sent {
            let Some(reply) = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)) else {
                break;
            };
            replies += 1;
            if let Message::UploadAck { file_id, sha256 } = reply {
                // The ack echoes the content digest (PROTOCOL.md §4) —
                // only then may the client delete the buffered file.
                assert_eq!(Some(&sha256), expected.get(&file_id), "ack digest");
                unacked.remove(&file_id);
            }
        }
        if unacked.is_empty() {
            break;
        }
    }

    let stats = srv.shutdown(&registry);
    let store = Arc::try_unwrap(store).expect("workers joined at shutdown");
    let snapshots = store.snapshots_ingested();
    let mut record_fp = String::new();
    for r in store.into_records() {
        use std::fmt::Write;
        writeln!(
            record_fp,
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}",
            r.install_id, r.participant, r.n_fast, r.first_seen, r.last_seen, r.snapshots_per_day
        )
        .unwrap();
    }
    let snap = registry.snapshot();
    PlaneRun {
        record_fp,
        snapshots,
        files: stats.files,
        sign_ins: stats.sign_ins,
        bad_uploads: stats.bad_uploads,
        load_sheds: snap.counter(keys::SERVER_LOAD_SHED),
        queue_depth_peak: snap.gauge(keys::SERVER_QUEUE_DEPTH_PEAK),
    }
}

#[test]
fn overfilled_queues_shed_loudly_and_lose_nothing() {
    let squeezed = run_plane(1);
    let roomy = run_plane(1024);

    // The pressure was real and the counters saw it…
    assert!(
        squeezed.load_sheds > 0,
        "a {N_FILES}-deep flood into a 1-deep queue must shed"
    );
    assert!(squeezed.queue_depth_peak >= 1);
    assert_eq!(roomy.load_sheds, 0, "a roomy queue never sheds");

    // …but zero data was lost: after retries, both runs ingested every
    // file exactly once.
    assert_eq!(squeezed.files, N_FILES);
    assert_eq!(squeezed.snapshots, N_FILES);
    assert_eq!(roomy.files, N_FILES);
    assert_eq!(roomy.snapshots, N_FILES);
    assert_eq!(squeezed.sign_ins, 1);
    assert_eq!(squeezed.bad_uploads, 0);

    // And the shed/queue-depth counters stayed out of the data: the
    // drained install records are byte-identical across queue limits.
    assert_eq!(
        squeezed.record_fp, roomy.record_fp,
        "backpressure must never reach the measurement database"
    );
}
