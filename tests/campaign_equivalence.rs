//! Differential harness: batch campaign detection must equal incremental.
//!
//! The lockstep detector (ARCHITECTURE.md §10) runs twice over every
//! study: *incrementally*, on the per-install sketches the streaming
//! engine folded at snapshot-ingest time (`StudyOutput::campaigns`), and
//! in *batch*, rebuilding every sketch from the columnar install-event
//! family (`racketstore::campaign::batch_report`). The contract is exact
//! equality — same candidate counts, same clusters, same device and app
//! lists, `f64`-bit-identical densities — because both paths feed the
//! identical `racket_campaign::detect` kernel with sketches built from
//! the same event stream.
//!
//! The matrix checks that contract everywhere it could break:
//!
//! * **thread counts** — 1, 2 and 8 rayon workers (sharded ingest merges
//!   sketches across shards; MinHash merge must stay order-insensitive);
//! * **collection paths** — direct in-process ingest, the framed sync
//!   wire, and the async reactor plane;
//! * **fault profiles** — clean and the combined hostile plan (replays
//!   must never double-fold a sketch; idempotent ingest dedups first).
//!
//! Every scenario runs a campaign-carrying fleet, so the comparison is
//! never vacuous, and every scenario must produce one byte-identical
//! campaign fingerprint — the detector's answer is a pure function of the
//! configuration, not of scheduling or transport.
//!
//! Scenarios pin `RAYON_NUM_THREADS` (process-global), so the matrix
//! lives in one `#[test]` and `check.sh` runs this binary with
//! `--test-threads=1` at worker counts 1 and 8.

mod common;

use common::{campaign_config, campaign_fingerprint, with_threads};
use racket_agents::PacingStrategy;
use racket_collect::FaultPlan;
use racketstore::campaign::batch_report;
use racketstore::study::{CollectionPath, Study};

/// Ambient thread pool (no pinning): the configuration every other test
/// runs with. Named to sort first so it executes before anything touches
/// `RAYON_NUM_THREADS`.
#[test]
fn ambient_batch_report_equals_incremental() {
    let out = Study::new(campaign_config(
        CollectionPath::Direct,
        2,
        PacingStrategy::Burst,
    ))
    .run();
    assert!(!out.campaigns.campaigns.is_empty(), "vacuous scenario");
    assert_eq!(batch_report(&out), out.campaigns, "ambient/direct/clean");
}

#[test]
fn matrix_batch_report_equals_incremental_everywhere() {
    let scenarios: [(&str, CollectionPath, FaultPlan); 5] = [
        ("direct/clean", CollectionPath::Direct, FaultPlan::none()),
        ("wire/clean", CollectionPath::Wire, FaultPlan::none()),
        ("wire/hostile", CollectionPath::Wire, FaultPlan::hostile()),
        ("async/clean", CollectionPath::AsyncWire, FaultPlan::none()),
        (
            "async/hostile",
            CollectionPath::AsyncWire,
            FaultPlan::hostile(),
        ),
    ];
    let mut canonical: Option<String> = None;
    for threads in ["1", "2", "8"] {
        for (name, path, faults) in &scenarios {
            let context = format!("{threads} threads, {name}");
            let fp = with_threads(threads, || {
                let mut config = campaign_config(*path, 2, PacingStrategy::Burst);
                config.faults = *faults;
                let out = Study::new(config).run();
                // Non-vacuity: the scenario's fleet carries campaigns and
                // the detector finds at least one cluster.
                assert!(!out.campaigns.campaigns.is_empty(), "{context}: vacuous");
                // Batch over the columnar event family == incremental
                // over ingest-time sketches, byte for byte.
                assert_eq!(batch_report(&out), out.campaigns, "{context}");
                campaign_fingerprint(&out)
            });
            // One answer across every thread count, path and fault plan.
            match &canonical {
                None => canonical = Some(fp),
                Some(c) => assert_eq!(c, &fp, "{context}: campaign report diverged"),
            }
        }
    }
}
