//! End-to-end pipeline test: study → measurements → labeling → app
//! classifier → device classifier, asserting the paper's headline shapes.

use racket_ml::Resampling;
use racket_types::Cohort;
use racketstore::app_classifier::{evaluate as evaluate_apps, AppClassifier, AppUsageDataset};
use racketstore::device_classifier::{evaluate as evaluate_devices, DeviceDataset};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::measurements::MeasurementReport;
use racketstore::study::{Study, StudyConfig, StudyOutput};
use std::sync::OnceLock;

fn output() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| Study::new(StudyConfig::test_scale()).run())
}

#[test]
fn study_population_and_collection() {
    let out = output();
    assert_eq!(out.observations.len(), 60);
    assert!(out.server_stats.snapshots > 10_000);
    assert_eq!(out.server_stats.bad_uploads, 0);
    assert!(
        out.reviews_crawled > 100,
        "crawler collected {}",
        out.reviews_crawled
    );
}

#[test]
fn measurements_reproduce_section_6_contrasts() {
    let m = MeasurementReport::compute(output());
    // The three headline §6 contrasts, as directional assertions.
    assert!(m.gmail_accounts.ks.significant());
    assert!(m.total_reviews.ks.significant());
    assert!(m.stopped_apps.kruskal.significant());
    assert!(m.total_reviews.worker_summary().mean > 20.0 * m.total_reviews.regular_summary().mean);
    // Install-to-review: workers fast, regulars slow (when they review at all).
    let itr = &m.install_to_review;
    let worker_mean = racket_stats::Summary::of(&itr.worker_days).unwrap().mean;
    assert!(
        (1.0..25.0).contains(&worker_mean),
        "worker delay mean {worker_mean}"
    );
}

#[test]
fn full_two_stage_detection_pipeline() {
    let out = output();
    let labels = label_apps(out, &LabelingConfig::test_scale());
    let app_ds = AppUsageDataset::build(out, &labels);
    // Table 1 shape: XGB best, high absolute F1.
    let app_report = evaluate_apps(&app_ds, 1, Resampling::None);
    let f1s: Vec<(&str, f64)> = app_report
        .table
        .iter()
        .map(|r| (r.name, r.metrics.f1))
        .collect();
    let xgb_f1 = f1s.iter().find(|(n, _)| *n == "XGB").unwrap().1;
    assert!(xgb_f1 > 0.95, "XGB F1 = {xgb_f1:.4}");
    for (name, f1) in &f1s {
        assert!(
            xgb_f1 >= *f1 - 0.02,
            "XGB ({xgb_f1:.4}) should lead or tie {name} ({f1:.4})"
        );
    }

    // Stage 2 with the coupling feature.
    let clf = AppClassifier::train(&app_ds);
    let dev_ds = DeviceDataset::build(out, &clf, 2, None, 7);
    let dev_report = evaluate_devices(&dev_ds, Resampling::Smote { k: 5 });
    let xgb = &dev_report.table[0];
    assert!(
        xgb.metrics.f1 > 0.85,
        "device XGB F1 = {:.4}",
        xgb.metrics.f1
    );

    // Figure 15: a material organic-indicative share. The paper's 69.1%
    // majority (and our 84% at paper scale, see EXPERIMENTS.md) needs the
    // full 580-worker population; a 40-worker test fleet trains the §7
    // classifier on a tiny holdout, so the split sits lower here.
    assert!(
        dev_report.split.organic_fraction() > 0.3,
        "organic fraction {:.2}",
        dev_report.split.organic_fraction()
    );
    assert_eq!(
        dev_report.split.organic + dev_report.split.dedicated,
        out.cohort(Cohort::Worker)
            .filter(|o| o.record.active_days() >= 2)
            .count()
    );
}

#[test]
fn observations_join_reviews_through_google_ids() {
    let out = output();
    for obs in out.observations.iter().take(10) {
        // Every review attributed to the device must come from one of its
        // resolved Google IDs.
        for reviews in obs.reviews_by_app.values() {
            for r in reviews {
                assert!(
                    obs.google_ids.contains(&r.reviewer),
                    "review by foreign account attributed to device"
                );
            }
        }
    }
}

#[test]
fn vt_reports_only_for_observed_apps() {
    let out = output();
    for obs in &out.observations {
        for app in obs.vt_flags.keys() {
            assert!(obs.record.apps.contains_key(app));
        }
    }
}

#[test]
fn labeling_rules_hold_on_every_selected_app() {
    let out = output();
    let labels = label_apps(out, &LabelingConfig::test_scale());
    // Re-verify the §7.2 rules independently of the implementation.
    for app in &labels.suspicious {
        assert!(
            out.fleet.catalog.promoted_apps().contains(app),
            "must be advertised"
        );
        let on_regular = out
            .observations
            .iter()
            .zip(&out.truth)
            .filter(|(_, t)| t.persona.cohort() == Cohort::Regular)
            .any(|(o, _)| o.record.apps.contains_key(app));
        assert!(!on_regular, "suspicious app on a regular device");
    }
    for app in &labels.non_suspicious {
        let on_worker = out
            .observations
            .iter()
            .zip(&out.truth)
            .filter(|(_, t)| t.persona.cohort() == Cohort::Worker)
            .any(|(o, _)| o.record.apps.contains_key(app));
        assert!(!on_worker, "non-suspicious app on a worker device");
        assert!(out.fleet.store.public_review_count(*app) >= 15_000);
    }
}

#[test]
fn snapshot_rates_scale_with_collector_thinning() {
    // Doubling the fast period must roughly halve the per-day fast counts
    // while leaving cohort structure intact — the property that justifies
    // thinning at experiment scale.
    let mut thin = StudyConfig::test_scale();
    thin.collector.fast_period_secs *= 2;
    let base = output();
    let thinned = Study::new(thin).run();
    let fast = |o: &StudyOutput| -> f64 {
        o.observations
            .iter()
            .map(|x| x.record.n_fast as f64)
            .sum::<f64>()
    };
    let ratio = fast(base) / fast(&thinned);
    assert!((1.7..2.3).contains(&ratio), "thinning ratio {ratio}");
}
