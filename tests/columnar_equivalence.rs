//! Differential harness: the columnar analyze engine must equal the
//! row-oriented reference, bit for bit.
//!
//! ARCHITECTURE.md §9's row→column equivalence contract has three layers,
//! and this binary pins all of them:
//!
//! * **store** — the [`racket_collect::ColumnarSnapshots`] projection
//!   built at assemble time must mirror the row-oriented install records
//!   exactly (same scalars, same per-app streaming aggregates, same
//!   account services), and its dictionary codes must be identical across
//!   worker-thread counts and collection paths (records reach the
//!   columnarizer in canonical sorted order on every path);
//! * **training** — the presorted columnar GBT split search must produce
//!   a byte-identical model to the row-oriented reference search
//!   (`fit_reference`) on study-derived feature matrices, where tied
//!   feature values and subsampled rows exercise the batch-canonical
//!   order hardest;
//! * **scoring** — flat-matrix batch scoring must yield bitwise the same
//!   probabilities as per-row scoring, and the detection service's
//!   batch-vs-streaming verdicts must stay bitwise equal now that both
//!   ride `Model::score_batch`.
//!
//! Scenarios pin `RAYON_NUM_THREADS` (process-global), so the matrix
//! lives in one binary that `check.sh` runs with `--test-threads=1`; the
//! ambient test is named to sort (and run) first.

mod common;

use common::{small_config, with_threads};
use racket_columnar::FlatMatrix;
use racket_ml::{Classifier, GradientBoosting, GradientBoostingParams, Model};
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::device_classifier::DeviceDataset;
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::scoring::DetectionService;
use racketstore::study::{CollectionPath, Study, StudyConfig, StudyOutput};
use std::fmt::Write;

/// Assert the columnar store is an exact projection of the row records.
fn assert_columnar_mirrors_records(out: &StudyOutput, context: &str) {
    assert_eq!(
        out.columnar.n_installs(),
        out.observations.len(),
        "{context}: one columnar row per joined record"
    );
    for obs in &out.observations {
        let r = &obs.record;
        let code = out
            .columnar
            .install_code(r.install_id)
            .unwrap_or_else(|| panic!("{context}: {:?} missing from dictionary", r.install_id));
        assert_eq!(out.columnar.install_id(code), r.install_id, "{context}");
        assert_eq!(out.columnar.participant(code), r.participant, "{context}");
        assert_eq!(
            out.columnar.snapshot_counts(code),
            (r.n_fast, r.n_slow),
            "{context}"
        );
        assert_eq!(
            out.columnar.active_days(code) as usize,
            r.active_days(),
            "{context}"
        );
        assert_eq!(
            out.columnar.avg_snapshots_per_day(code).to_bits(),
            r.avg_snapshots_per_day().to_bits(),
            "{context}: avg snapshots/day must be the same f64"
        );
        assert_eq!(
            out.columnar.event_totals(code),
            (r.stream.n_install_events, r.stream.n_uninstall_events),
            "{context}"
        );
        // CSR app entries: ascending AppId, stats equal to the streaming
        // aggregates latched on the record.
        let entries: Vec<_> = out.columnar.apps_of(code).collect();
        assert_eq!(entries.len(), r.apps.len(), "{context}: app entry count");
        let mut expected: Vec<_> = r.apps.keys().copied().collect();
        expected.sort_unstable();
        for (entry, &app) in entries.iter().zip(&expected) {
            assert_eq!(entry.app, app, "{context}: apps sorted by AppId");
            let stream = r.stream.app(app).copied().unwrap_or_default();
            assert_eq!(entry.fg_total, stream.fg_total, "{context}: {app:?}");
            assert_eq!(entry.n_installs, stream.n_installs, "{context}: {app:?}");
            assert_eq!(
                entry.n_uninstalls, stream.n_uninstalls,
                "{context}: {app:?}"
            );
            let last = stream
                .last_uninstall
                .map_or(racket_collect::NEVER_UNINSTALLED, |t| t.as_secs());
            assert_eq!(entry.last_uninstall, last, "{context}: {app:?}");
        }
        // Account services, in snapshot order.
        let services: Vec<_> = out.columnar.services_of(code).collect();
        let expected_services: Vec<_> = r.accounts.iter().map(|a| a.service).collect();
        assert_eq!(services, expected_services, "{context}: account services");
    }
}

/// Canonical dump of the columnar store: identical across thread counts
/// and collection paths (codes come from the sorted record order).
fn columnar_fingerprint(out: &StudyOutput) -> String {
    let mut s = String::new();
    for code in 0..out.columnar.n_installs() as u32 {
        write!(
            s,
            "{:?}|{:?}|{:?}|{}|{:x}|{:?}",
            out.columnar.install_id(code),
            out.columnar.participant(code),
            out.columnar.snapshot_counts(code),
            out.columnar.active_days(code),
            out.columnar.avg_snapshots_per_day(code).to_bits(),
            out.columnar.event_totals(code),
        )
        .unwrap();
        for e in out.columnar.apps_of(code) {
            write!(
                s,
                "|{:?}:{},{},{},{}",
                e.app, e.fg_total, e.n_installs, e.n_uninstalls, e.last_uninstall
            )
            .unwrap();
        }
        let services: Vec<_> = out.columnar.services_of(code).collect();
        writeln!(s, "|{services:?}").unwrap();
    }
    s
}

/// Whatever thread pool the environment gives us: the full contract on a
/// test-scale study, including model training.
#[test]
fn ambient_columnar_engine_matches_row_reference() {
    let out = Study::new(StudyConfig::test_scale()).run();
    assert_columnar_mirrors_records(&out, "ambient/wire/clean");

    // Study-derived app feature matrix: the presorted columnar split
    // search must reproduce the row-oriented reference byte for byte.
    let labels = label_apps(&out, &LabelingConfig::test_scale());
    let ds = AppUsageDataset::build(&out, &labels);
    let mut columnar = GradientBoosting::new(GradientBoostingParams::default());
    columnar.fit(&ds.data.x, &ds.data.y);
    let mut reference = GradientBoosting::new(GradientBoostingParams::default());
    reference.fit_reference(&ds.data.x, &ds.data.y);
    assert_eq!(
        Model::Xgb(columnar.clone()).to_bytes(),
        Model::Xgb(reference).to_bytes(),
        "columnar and reference split searches must agree byte-for-byte"
    );

    // Flat-matrix batch scoring == per-row scoring, bitwise.
    let model = Model::Xgb(columnar);
    let flat = FlatMatrix::from_rows(&ds.data.x);
    let batch = model.score_batch(&flat);
    assert_eq!(batch.len(), ds.data.x.len());
    for (row, proba) in ds.data.x.iter().zip(&batch) {
        assert_eq!(
            proba.to_bits(),
            model.score(row).to_bits(),
            "batch scoring must equal per-row scoring"
        );
    }

    // End to end: the service's batch and streaming verdicts (both now on
    // the flat-matrix path) stay bitwise equal.
    let clf = AppClassifier::train(&ds);
    let dev_ds = DeviceDataset::build(&out, &clf, 2, None, 5);
    let svc = DetectionService::train(&clf, &dev_ds);
    let primed = svc.prime(&out);
    let streaming = svc.score_streaming(&out, &primed);
    let batch = svc.score_batch(&out);
    assert_eq!(streaming.len(), batch.len());
    for (s, b) in streaming.iter().zip(&batch) {
        assert_eq!(s.suspiciousness.to_bits(), b.suspiciousness.to_bits());
        assert_eq!(s.proba.to_bits(), b.proba.to_bits());
        assert_eq!(s.is_worker, b.is_worker);
    }
}

/// The columnar store is a pure function of the study data: identical
/// across 1/2/8 worker threads and all three collection paths.
#[test]
fn matrix_columnar_store_is_path_and_thread_invariant() {
    let paths = [
        ("direct", CollectionPath::Direct),
        ("wire", CollectionPath::Wire),
        ("async", CollectionPath::AsyncWire),
    ];
    let mut baseline: Option<String> = None;
    for threads in ["1", "2", "8"] {
        for (name, path) in paths {
            let out = with_threads(threads, || Study::new(small_config(path)).run());
            let context = format!("{name} @ {threads} threads");
            assert_columnar_mirrors_records(&out, &context);
            let fp = columnar_fingerprint(&out);
            match &baseline {
                None => baseline = Some(fp),
                Some(expect) => assert_eq!(
                    &fp, expect,
                    "{context}: columnar store diverged from direct @ 1 thread"
                ),
            }
        }
    }
}
