//! Conformance bands for the coordinated-campaign (lockstep) detector.
//!
//! The fleet schedules ground-truth campaigns (ARCHITECTURE.md §10); the
//! detector must recover them from nothing but the per-install event
//! sketches. These tests pin the detection-quality bands at the test-scale
//! seed — burst pacing is near-perfectly recoverable, stealth pacing trades
//! recall for evasion, and a campaign-free fleet must report *zero*
//! campaigns (the false-positive control: organic churn and persona-driven
//! promotion installs never look like lockstep under the default
//! thresholds).

mod common;

use common::{
    campaign_config, fingerprint, small_config, streaming_fingerprint, text_campaign_config,
    text_config,
};
use racket_agents::PacingStrategy;
use racketstore::campaign::{batch_report, evaluate, membership};
use racketstore::study::{CollectionPath, Study};

#[test]
fn campaign_free_fleet_reports_zero_campaigns() {
    let out = Study::new(small_config(CollectionPath::Direct)).run();
    assert!(out.fleet.campaigns.is_empty());
    assert!(
        out.campaigns.campaigns.is_empty(),
        "false positives on an organic fleet: {:?}",
        out.campaigns.campaigns
    );
    assert_eq!(batch_report(&out), out.campaigns);
    let eval = evaluate(&out.campaigns, &out);
    assert_eq!((eval.recall(), eval.precision()), (1.0, 1.0));
    assert!(membership(&out.campaigns, &out).iter().all(Option::is_none));
}

/// Negative control for the near-duplicate text source (ARCHITECTURE.md
/// §13): an organic, campaign-free fleet with review text *enabled*
/// must still report zero campaigns and zero verified text edges.
/// Personal review text is keyed per (account, app, rating), so two
/// accounts never share a template — banded LSH may surface candidate
/// pairs (it is allowed to over-recall), but Hamming verification and
/// the co-reviewed-apps quorum must reject every one of them.
#[test]
fn organic_text_fleet_is_a_negative_control() {
    let out = Study::new(text_config(CollectionPath::Direct)).run();
    assert!(out.fleet.campaigns.is_empty());
    let report = &out.campaigns;
    println!(
        "negative control: text_candidates={} text_edges={} campaigns={}",
        report.n_text_candidate_pairs,
        report.n_text_edges,
        report.campaigns.len()
    );
    assert_eq!(
        report.n_text_edges, 0,
        "organic review text produced verified cross-account near-duplicate edges"
    );
    assert!(
        report.campaigns.is_empty(),
        "false positives on an organic text-enabled fleet: {:?}",
        report.campaigns
    );
    // The batch path (columnar review family in, same kernel) agrees,
    // candidate counts included.
    assert_eq!(batch_report(&out), *report);
    let eval = evaluate(report, &out);
    assert_eq!((eval.recall(), eval.precision()), (1.0, 1.0));
    assert!(membership(report, &out).iter().all(Option::is_none));
}

/// The text family is a second, independent candidate source: campaign
/// workers post template-shared (often verbatim) review text, so under
/// evasive stealth pacing — which drips installs until the lockstep
/// event windows stop overlapping — the near-duplicate index recovers
/// campaigns the event-only detector misses entirely. A 10-day window
/// gives drip-paced workers time to cover two or more shared apps (the
/// verification quorum); at the 4-day window of [`campaign_config`]
/// each worker reviews at most one target, and the quorum correctly
/// keeps single-app text overlap from becoming an edge.
#[test]
fn text_edges_recover_stealth_campaigns_the_event_detector_misses() {
    let run = |text: bool| {
        let mut config = if text {
            text_campaign_config(CollectionPath::Direct, 2, PacingStrategy::Stealth)
        } else {
            campaign_config(CollectionPath::Direct, 2, PacingStrategy::Stealth)
        };
        config.fleet.max_study_days = 10;
        Study::new(config).run()
    };
    let event_only = run(false);
    let with_text = run(true);
    let ee = evaluate(&event_only.campaigns, &event_only);
    let et = evaluate(&with_text.campaigns, &with_text);
    println!(
        "stealth+text: candidates={} edges={} recall={:.2} precision={:.2} (event-only recall {:.2})",
        with_text.campaigns.n_text_candidate_pairs,
        with_text.campaigns.n_text_edges,
        et.recall(),
        et.precision(),
        ee.recall()
    );
    // Non-vacuous: the near-duplicate index really contributed edges.
    assert!(
        with_text.campaigns.n_text_edges > 0,
        "campaign review templates produced no verified text edges"
    );
    // The headline band: text strictly improves stealth recall here
    // (measured 0.00 -> 0.50 at this seed), at full precision.
    assert!(
        et.recall() > ee.recall(),
        "text edges did not improve stealth recall ({:.2} vs {:.2})",
        et.recall(),
        ee.recall()
    );
    assert!(
        et.precision() >= 0.9,
        "stealth+text precision {:.2} below band",
        et.precision()
    );
}

#[test]
fn burst_campaigns_are_recovered() {
    let out = Study::new(campaign_config(
        CollectionPath::Direct,
        2,
        PacingStrategy::Burst,
    ))
    .run();
    assert_eq!(out.fleet.campaigns.len(), 2);
    let eval = evaluate(&out.campaigns, &out);
    println!(
        "burst: truth={} detected={} recall={:.2} precision={:.2}",
        eval.n_truth,
        eval.n_detected,
        eval.recall(),
        eval.precision()
    );
    assert!(
        eval.recall() >= 0.9,
        "burst recall {:.2} below band",
        eval.recall()
    );
    assert!(
        eval.precision() >= 0.9,
        "burst precision {:.2} below band",
        eval.precision()
    );
    // Every detected cluster names at least the configured target quorum.
    assert!(out.campaigns.campaigns.iter().all(|c| !c.apps.is_empty()));
    // The verdict surface marks exactly the clustered devices.
    let marks = membership(&out.campaigns, &out);
    let n_marked = marks.iter().flatten().count();
    let n_clustered: usize = out
        .campaigns
        .campaigns
        .iter()
        .map(|c| c.devices.len())
        .sum();
    assert_eq!(n_marked, n_clustered);
}

#[test]
fn stealth_pacing_degrades_recall_not_precision() {
    let burst = Study::new(campaign_config(
        CollectionPath::Direct,
        2,
        PacingStrategy::Burst,
    ))
    .run();
    let stealth = Study::new(campaign_config(
        CollectionPath::Direct,
        2,
        PacingStrategy::Stealth,
    ))
    .run();
    let eb = evaluate(&burst.campaigns, &burst);
    let es = evaluate(&stealth.campaigns, &stealth);
    println!(
        "stealth: detected={} recall={:.2} precision={:.2} (burst recall {:.2})",
        es.n_detected,
        es.recall(),
        es.precision(),
        eb.recall()
    );
    // Evasion helps the campaign: stealth never detects *better* than
    // burst at the same scale...
    assert!(es.recall() <= eb.recall());
    // ...but what the detector does report must still be real campaigns.
    assert!(
        es.precision() >= 0.9,
        "stealth precision {:.2} below band",
        es.precision()
    );
}

/// `StudyOutput::campaigns` is derived analysis, not collected data: it
/// must stay outside every canonical output fingerprint. This regression
/// test mutates the report and asserts the fingerprints cannot see it —
/// if a later change renders `campaigns` into `fingerprint` /
/// `streaming_fingerprint`, this fails.
#[test]
fn campaign_report_is_excluded_from_output_fingerprints() {
    let mut out = Study::new(campaign_config(
        CollectionPath::Direct,
        1,
        PacingStrategy::Burst,
    ))
    .run();
    assert!(
        !out.campaigns.campaigns.is_empty(),
        "exclusion test is vacuous without a detected campaign"
    );
    let (fp, sfp) = (fingerprint(&out), streaming_fingerprint(&out));
    out.campaigns = Default::default();
    assert_eq!(fp, fingerprint(&out));
    assert_eq!(sfp, streaming_fingerprint(&out));
}
