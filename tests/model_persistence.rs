//! Model serialization round-trips for every learner the paper evaluates.
//!
//! The live detection service ships fitted models as RKML blobs
//! (`racket_ml::persist`), so the codec's contract is pinned here for all
//! six learners (XGB, RF, LR, SVM, KNN, LVQ):
//!
//! * **round-trip fidelity** — a deserialized model produces bit-identical
//!   probabilities to the original on every probe row;
//! * **hostile bytes fail closed** — truncated prefixes, single-byte
//!   corruption anywhere in the blob, trailing garbage and empty input
//!   all return `Err`, never panic, never a silently different model.

use racket_ml::{
    Classifier, GradientBoosting, GradientBoostingParams, KNearestNeighbors, LinearSvm,
    LinearSvmParams, LogisticRegression, LogisticRegressionParams, Lvq, LvqParams, Model,
    RandomForest, RandomForestParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small two-cluster binary dataset: class 1 sits a couple of units away
/// from class 0 in every dimension, with overlap so probabilities are not
/// degenerate 0/1 everywhere.
fn synthetic(n: usize, dims: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as u8;
        let center = if label == 1 { 2.0 } else { 0.0 };
        x.push(
            (0..dims)
                .map(|_| center + 3.0 * (rng.gen::<f64>() - 0.5))
                .collect(),
        );
        y.push(label);
    }
    (x, y)
}

/// Every learner of Tables 1 and 2, fitted on the same dataset and wrapped
/// in the [`Model`] envelope.
fn fitted_models(x: &[Vec<f64>], y: &[u8]) -> Vec<Model> {
    let mut xgb = GradientBoosting::new(GradientBoostingParams::default());
    xgb.fit(x, y);
    let mut rf = RandomForest::new(RandomForestParams::default());
    rf.fit(x, y);
    let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
    lr.fit(x, y);
    let mut svm = LinearSvm::new(LinearSvmParams::default());
    svm.fit(x, y);
    let mut knn = KNearestNeighbors::paper_default();
    knn.fit(x, y);
    let mut lvq = Lvq::new(LvqParams::default());
    lvq.fit(x, y);
    vec![
        Model::Xgb(xgb),
        Model::Rf(rf),
        Model::Lr(lr),
        Model::Svm(svm),
        Model::Knn(knn),
        Model::Lvq(lvq),
    ]
}

#[test]
fn every_learner_round_trips_with_identical_predictions() {
    let (x, y) = synthetic(80, 6, 4242);
    let (probe, _) = synthetic(40, 6, 999);
    for model in fitted_models(&x, &y) {
        let bytes = model.to_bytes();
        let restored = Model::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{}: clean bytes failed to decode: {e}", model.name()));
        assert_eq!(model.name(), restored.name());
        for (i, row) in probe.iter().enumerate() {
            let before = model.score(row);
            let after = restored.score(row);
            assert_eq!(
                before.to_bits(),
                after.to_bits(),
                "{}: probe {i}: {before:?} != {after:?} after round-trip",
                model.name()
            );
            assert_eq!(model.predict(row), restored.predict(row));
        }
        // Re-serializing the restored model reproduces the same blob.
        assert_eq!(
            bytes,
            restored.to_bytes(),
            "{}: bytes unstable",
            model.name()
        );
    }
}

#[test]
fn truncated_bytes_return_err_never_panic() {
    let (x, y) = synthetic(40, 4, 7);
    for model in fitted_models(&x, &y) {
        let bytes = model.to_bytes();
        // Every strict prefix must fail closed — the checksum trailer is
        // checked before any payload parsing, so no prefix can decode.
        let step = (bytes.len() / 97).max(1);
        for len in (0..bytes.len()).step_by(step) {
            assert!(
                Model::from_bytes(&bytes[..len]).is_err(),
                "{}: {len}-byte prefix of {} decoded",
                model.name(),
                bytes.len()
            );
        }
        assert!(Model::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}

#[test]
fn corrupted_bytes_return_err_never_panic() {
    let (x, y) = synthetic(40, 4, 8);
    for model in fitted_models(&x, &y) {
        let bytes = model.to_bytes();
        // A single flipped byte anywhere breaks the FNV-1a trailer (or is
        // the trailer itself); sample positions to keep the suite fast.
        let step = (bytes.len() / 211).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xa5;
            assert!(
                Model::from_bytes(&bad).is_err(),
                "{}: flip at {pos}/{} decoded",
                model.name(),
                bytes.len()
            );
        }
        // Trailing garbage after a valid blob is rejected too.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Model::from_bytes(&trailing).is_err());
    }
    assert!(Model::from_bytes(&[]).is_err());
    assert!(Model::from_bytes(b"RKML").is_err());
    assert!(Model::from_bytes(&[0u8; 256]).is_err());
}
