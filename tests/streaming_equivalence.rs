//! Differential harness: streaming feature state must equal batch.
//!
//! The streaming analysis engine (ARCHITECTURE.md §7) maintains per-install
//! and per-app feature state incrementally at ingest time, so that the
//! Table 1/Table 2 feature vectors are available the moment the last
//! snapshot lands. Its correctness contract is *exact* equality with the
//! batch path: for every device and every observed app, the vector emitted
//! from streaming state must be `f64`-bit-identical to the one recomputed
//! from the raw assembled observation by `racket_features::app_features` /
//! `device_features`.
//!
//! This harness runs a full study per scenario and checks that contract
//! across everything that could plausibly break it:
//!
//! * **thread counts** — 1, 2 and 8 rayon workers (sharded ingest merges
//!   stream state across shards in adopt order);
//! * **collection paths** — direct in-process delivery, the framed wire
//!   protocol over a synchronous loopback, and the asynchronous reactor
//!   plane (`CollectionPath::AsyncWire`), clean and hostile;
//! * **chaos fault profiles** — every fault class alone plus the combined
//!   hostile profile: replays, reorders and reconnects must never
//!   double-fold streaming state (idempotent ingest dedups uploads before
//!   they reach the fold hooks).
//!
//! The matrix fleet also generates review text, so every scenario pins
//! the streaming text-sketch contract (ARCHITECTURE.md §13) next to the
//! feature-vector one: the per-install `TextSketch` folded at ingest must
//! equal the batch rebuild from the columnar review family.
//!
//! Scenarios pin `RAYON_NUM_THREADS`, which is process-global, so both
//! tests live in one binary that `check.sh` runs with `--test-threads=1`;
//! the ambient test is named to sort (and therefore run) first, before
//! anything has touched the variable.

mod common;

use common::{
    assert_stream_equals_batch, assert_text_stream_equals_batch, small_config, text_config,
    with_threads,
};
use racket_collect::FaultPlan;
use racketstore::study::{CollectionPath, Study};

/// Whatever thread pool the environment gives us (no pinning): the
/// configuration every other test and binary in the repository runs with.
#[test]
fn ambient_streaming_state_equals_batch_features() {
    let out = Study::new(small_config(CollectionPath::Direct)).run();
    assert_stream_equals_batch(&out, "ambient/direct/clean");
    assert_text_stream_equals_batch(&out, "ambient/direct/clean");
}

#[test]
fn matrix_streaming_state_equals_batch_features() {
    let scenarios: [(&str, CollectionPath, FaultPlan); 12] = [
        ("direct/clean", CollectionPath::Direct, FaultPlan::none()),
        ("wire/clean", CollectionPath::Wire, FaultPlan::none()),
        ("wire/drop", CollectionPath::Wire, FaultPlan::drops()),
        (
            "wire/duplicate",
            CollectionPath::Wire,
            FaultPlan::duplicates(),
        ),
        ("wire/reorder", CollectionPath::Wire, FaultPlan::reorders()),
        (
            "wire/truncate",
            CollectionPath::Wire,
            FaultPlan::truncations(),
        ),
        (
            "wire/corrupt",
            CollectionPath::Wire,
            FaultPlan::corruptions(),
        ),
        (
            "wire/disconnect",
            CollectionPath::Wire,
            FaultPlan::disconnects(),
        ),
        ("wire/stall", CollectionPath::Wire, FaultPlan::stalls()),
        ("wire/hostile", CollectionPath::Wire, FaultPlan::hostile()),
        ("async/clean", CollectionPath::AsyncWire, FaultPlan::none()),
        (
            "async/hostile",
            CollectionPath::AsyncWire,
            FaultPlan::hostile(),
        ),
    ];
    for threads in ["1", "2", "8"] {
        for (name, path, plan) in scenarios {
            // The matrix fleet generates review text, so every scenario
            // also pins the streaming text-sketch contract
            // (ARCHITECTURE.md §13); the feature-vector contract is
            // unaffected — text draws from its own keyed stream family.
            let out = with_threads(threads, || {
                let mut config = text_config(path);
                config.faults = plan;
                Study::new(config).run()
            });
            let context = format!("{name} @ {threads} threads");
            assert_stream_equals_batch(&out, &context);
            assert_text_stream_equals_batch(&out, &context);
        }
    }
}
