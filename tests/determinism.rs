//! Thread-count invariance of the parallel pipeline.
//!
//! The simulate→collect→analyze pipeline fans out across rayon worker
//! threads, but every parallel region is constructed to be deterministic:
//! per-device RNG streams, disjoint ID ranges, ordered merges, and sorted
//! record drains. This test pins the contract: the same configuration and
//! seed must produce a byte-identical study output whether the pipeline
//! runs on 1, 2 or 8 worker threads.
//!
//! All runs happen inside one `#[test]` because the worker-thread count is
//! pinned through the `RAYON_NUM_THREADS` environment variable, which is
//! process-global — concurrent tests flipping it would race.

mod common;

use common::{fingerprint, small_config, with_threads};
use racket_agents::{Fleet, FleetConfig};
use racketstore::study::{CollectionPath, Study};
use std::fmt::Write;

/// Canonical fingerprint of a generated fleet: per-device state in fleet
/// order plus the review store rendered app-by-app in ID order.
fn fleet_fingerprint(fleet: &Fleet) -> String {
    let mut s = String::new();
    for d in &fleet.devices {
        let mut apps: Vec<_> = d.device.installed_apps().collect();
        apps.sort_by_key(|a| a.app);
        writeln!(
            s,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{apps:?}|{:?}",
            d.participant,
            d.install_id,
            d.monitoring,
            d.persona(),
            d.device.android_id(),
            d.device.accounts()
        )
        .unwrap();
    }
    for raw in 0..=(fleet.catalog.len() as u32 + 1) {
        let app = racket_types::AppId(raw);
        let n = fleet.store.review_count(app);
        if n == 0 {
            continue;
        }
        writeln!(s, "app {raw}: {:?}", fleet.store.newest_page(app, 0, n)).unwrap();
    }
    s
}

#[test]
fn output_is_invariant_to_worker_thread_count() {
    // Fleet generation: serial (1 thread) vs parallel (8 threads).
    let fleet_serial = with_threads("1", || {
        fleet_fingerprint(&Fleet::generate(FleetConfig::test_scale()))
    });
    let fleet_parallel = with_threads("8", || {
        fleet_fingerprint(&Fleet::generate(FleetConfig::test_scale()))
    });
    assert_eq!(
        fleet_serial, fleet_parallel,
        "Fleet::generate depends on thread count"
    );

    // Full study, direct (sharded-ingest) path: 1 vs 2 vs 8 threads.
    let run = |threads: &str, path| {
        with_threads(threads, || {
            fingerprint(&Study::new(small_config(path)).run())
        })
    };
    let d1 = run("1", CollectionPath::Direct);
    let d2 = run("2", CollectionPath::Direct);
    let d8 = run("8", CollectionPath::Direct);
    assert_eq!(d1, d2, "direct path differs between 1 and 2 threads");
    assert_eq!(d1, d8, "direct path differs between 1 and 8 threads");

    // Full study, wire (framed upload) path: 1 vs 8 threads.
    let w1 = run("1", CollectionPath::Wire);
    let w8 = run("8", CollectionPath::Wire);
    assert_eq!(w1, w8, "wire path differs between 1 and 8 threads");
}
