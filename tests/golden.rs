//! Golden classifier metrics: the end-to-end pipeline at the seed
//! configuration must keep reproducing the same Table 1 / Table 2 /
//! Figure 15 numbers it produced when these pins were recorded.
//!
//! Unlike `tests/determinism.rs` (bit-exact dataset fingerprints) and
//! `tests/conformance.rs` (distributional bands), this suite pins the
//! *analysis outputs* — XGB F1 scores under the paper's CV protocols and
//! the Figure 15 organic/dedicated split — so a change anywhere in the
//! pipeline (simulator, features, labeling, SMOTE, CV fold assignment,
//! the learners themselves) that moves the headline results by more than
//! half an F1 point is caught even if it keeps the raw data plausible.
//!
//! The pinned values are MEASURED at the test-scale seed config, not the
//! paper's numbers (paper scale: Table 1 XGB F1 98.56%, Table 2 XGB F1
//! 97.77%; see EXPERIMENTS.md §Golden pins). If a deliberate change
//! moves them, re-measure with `cargo test --test golden -- --nocapture`
//! and update both the constants here and EXPERIMENTS.md.

use racket_ml::{cross_validate, Resampling};
use racketstore::app_classifier::{table1_algorithms, AppClassifier, AppUsageDataset};
use racketstore::device_classifier::{DeviceDataset, DEDICATED_SUSPICIOUSNESS};
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::study::{Study, StudyConfig, StudyOutput};
use std::sync::OnceLock;

/// Table 1, XGB row: repeated-free 10-fold CV, seed 42, no resampling.
const GOLDEN_APP_XGB_F1: f64 = 0.996714;
/// Table 2, XGB row: 10-fold CV, seed 77, SMOTE (k = 5).
const GOLDEN_DEVICE_XGB_F1: f64 = 0.936709;
/// Figure 15 split over label-1 rows of the device dataset.
const GOLDEN_ORGANIC: usize = 15;
const GOLDEN_DEDICATED: usize = 25;

/// ±0.5 F1 points, the ISSUE's tolerance. CV at fixed seeds is fully
/// deterministic, so any drift inside the band is a real (small) change
/// in pipeline behaviour, not noise.
const F1_TOLERANCE: f64 = 0.005;

struct Golden {
    app_xgb_f1: f64,
    device_xgb_f1: f64,
    organic: usize,
    dedicated: usize,
}

fn xgb() -> impl Fn() -> Box<dyn racket_ml::Classifier> + Sync {
    let (name, factory) = table1_algorithms().swap_remove(0);
    assert_eq!(name, "XGB");
    move || factory()
}

fn pipeline() -> &'static (StudyOutput, Golden) {
    static P: OnceLock<(StudyOutput, Golden)> = OnceLock::new();
    P.get_or_init(|| {
        let out = Study::new(StudyConfig::test_scale()).run();
        let labels = label_apps(&out, &LabelingConfig::test_scale());
        let app_ds = AppUsageDataset::build(&out, &labels);

        // Table 1 protocol, XGB only (the headline row).
        let app_cv = cross_validate(xgb(), &app_ds.data, 10, 1, Resampling::None, 42);

        // Table 2 protocol over the device dataset derived from the
        // trained §7 classifier.
        let clf = AppClassifier::train(&app_ds);
        let dev_ds = DeviceDataset::build(&out, &clf, 2, None, 7);
        let dev_cv = cross_validate(xgb(), &dev_ds.data, 10, 1, Resampling::Smote { k: 5 }, 77);

        // Figure 15: organic vs dedicated among worker-labeled rows.
        let (mut organic, mut dedicated) = (0usize, 0usize);
        for (&label, &susp) in dev_ds.data.y.iter().zip(&dev_ds.suspiciousness) {
            if label == 1 {
                if susp >= DEDICATED_SUSPICIOUSNESS {
                    dedicated += 1;
                } else {
                    organic += 1;
                }
            }
        }

        let golden = Golden {
            app_xgb_f1: app_cv.metrics.f1,
            device_xgb_f1: dev_cv.metrics.f1,
            organic,
            dedicated,
        };
        println!(
            "MEASURED golden values:\n  app_xgb_f1    = {:.6}\n  device_xgb_f1 = {:.6}\n  \
             organic       = {}\n  dedicated     = {}",
            golden.app_xgb_f1, golden.device_xgb_f1, golden.organic, golden.dedicated
        );
        (out, golden)
    })
}

#[test]
fn table1_app_xgb_f1_is_pinned() {
    let (_, g) = pipeline();
    assert!(
        (g.app_xgb_f1 - GOLDEN_APP_XGB_F1).abs() <= F1_TOLERANCE,
        "Table 1 XGB F1 drifted: measured {:.4}, pinned {:.4} ± {:.3}",
        g.app_xgb_f1,
        GOLDEN_APP_XGB_F1,
        F1_TOLERANCE
    );
}

#[test]
fn table2_device_xgb_f1_is_pinned() {
    let (_, g) = pipeline();
    assert!(
        (g.device_xgb_f1 - GOLDEN_DEVICE_XGB_F1).abs() <= F1_TOLERANCE,
        "Table 2 XGB F1 drifted: measured {:.4}, pinned {:.4} ± {:.3}",
        g.device_xgb_f1,
        GOLDEN_DEVICE_XGB_F1,
        F1_TOLERANCE
    );
}

#[test]
fn figure15_split_is_pinned() {
    let (_, g) = pipeline();
    assert_eq!(
        (g.organic, g.dedicated),
        (GOLDEN_ORGANIC, GOLDEN_DEDICATED),
        "Figure 15 organic/dedicated split drifted (deterministic count, \
         pinned exactly)"
    );
    // The paper-scale split is 84.3% organic (150/178); the tiny test
    // fleet trains §7 on a small holdout, so only the direction is
    // asserted here — the exact counts are the golden pin above.
    assert!(g.organic + g.dedicated > 0, "no worker rows in the dataset");
}
