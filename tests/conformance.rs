//! Statistical conformance: the simulated fleet must reproduce the
//! paper's §6 cohort statistics within tolerance.
//!
//! The fleet is a generative model *calibrated* to the paper (DESIGN.md);
//! these tests are the tripwire that keeps the calibration honest as the
//! pipeline evolves. Each check has a tolerance band wide enough to
//! absorb small-fleet sampling noise at test scale but tight enough that
//! a drifted calibration constant trips it — verified by the negative
//! control below, which perturbs one persona parameter through the
//! `PersonaOverrides` hook and asserts the suite notices.
//!
//! Paper anchors (see EXPERIMENTS.md for the paper-scale measurements):
//!
//! * Figure 5 — workers register tens of Gmail accounts (paper mean
//!   28.87), regular users one or two.
//! * Figure 7 — 33.1% of worker reviews post within a day of install
//!   (37.2% measured at mid scale); regular users mostly review much
//!   later.
//! * Figure 8 — workers force-stop promoted apps after the job (36.71
//!   vs 3.54 mean stopped apps).

mod common;

use racket_agents::{ClampedLogNormal, PersonaParams};
use racketstore::measurements::MeasurementReport;
use racketstore::study::{CollectionPath, Study, StudyConfig, StudyOutput};
use std::sync::OnceLock;

/// Test-scale study over the direct path (the distribution checks don't
/// need the wire-protocol hop, and direct keeps the run fast).
fn conformance_config() -> StudyConfig {
    let mut config = StudyConfig::test_scale();
    config.path = CollectionPath::Direct;
    config
}

fn baseline() -> &'static (StudyOutput, MeasurementReport) {
    static OUT: OnceLock<(StudyOutput, MeasurementReport)> = OnceLock::new();
    OUT.get_or_init(|| {
        let out = Study::new(conformance_config()).run();
        let report = MeasurementReport::compute(&out);
        (out, report)
    })
}

/// Every conformance violation in `report`, as human-readable strings
/// (empty = conformant). Collected rather than asserted one-by-one so a
/// drifted calibration reports *all* bands it broke.
fn violations(report: &MeasurementReport) -> Vec<String> {
    let mut v = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            v.push(msg);
        }
    };

    // -- Figure 5: Gmail accounts per device -----------------------------
    let reg = report.gmail_accounts.regular_summary();
    let wrk = report.gmail_accounts.worker_summary();
    check(
        (1.0..=4.0).contains(&reg.median),
        format!(
            "gmail_accounts: regular median {:.2} outside [1, 4] (calibration median 2)",
            reg.median
        ),
    );
    check(
        (8.0..=60.0).contains(&wrk.median),
        format!(
            "gmail_accounts: worker median {:.2} outside [8, 60] (organic 15 / dedicated 31)",
            wrk.median
        ),
    );
    check(
        wrk.mean >= 4.0 * reg.mean,
        format!(
            "gmail_accounts: worker mean {:.2} not ≫ regular mean {:.2} (paper: 28.87 vs ~1)",
            wrk.mean, reg.mean
        ),
    );
    check(
        report.gmail_accounts.ks.significant(),
        format!(
            "gmail_accounts: cohorts not separable by KS (p = {:.3})",
            report.gmail_accounts.ks.p_value
        ),
    );

    // -- Figure 7: install-to-review delay -------------------------------
    let itr = &report.install_to_review;
    let worker_frac = itr.worker_within_one_day as f64 / itr.worker_days.len().max(1) as f64;
    check(
        itr.worker_days.len() >= 50,
        format!(
            "install_to_review: only {} worker delays sampled",
            itr.worker_days.len()
        ),
    );
    check(
        (0.15..=0.60).contains(&worker_frac),
        format!(
            "install_to_review: {:.1}% of worker reviews within a day, outside [15%, 60%] \
             (paper: 33.1%)",
            worker_frac * 100.0
        ),
    );
    let wrk_delay = itr.comparison.worker_summary();
    let reg_delay = itr.comparison.regular_summary();
    check(
        wrk_delay.median < reg_delay.median,
        format!(
            "install_to_review: worker median delay {:.1}d not below regular {:.1}d",
            wrk_delay.median, reg_delay.median
        ),
    );

    // -- Figure 8: stopped apps ------------------------------------------
    let reg_stop = report.stopped_apps.regular_summary();
    let wrk_stop = report.stopped_apps.worker_summary();
    check(
        (8.0..=80.0).contains(&wrk_stop.mean),
        format!(
            "stopped_apps: worker mean {:.2} outside [8, 80] (paper: 36.71)",
            wrk_stop.mean
        ),
    );
    check(
        reg_stop.mean <= 8.0,
        format!(
            "stopped_apps: regular mean {:.2} above 8 (paper: 3.54)",
            reg_stop.mean
        ),
    );
    check(
        wrk_stop.mean >= 3.0 * reg_stop.mean.max(0.5),
        format!(
            "stopped_apps: worker mean {:.2} not ≫ regular mean {:.2}",
            wrk_stop.mean, reg_stop.mean
        ),
    );

    v
}

#[test]
fn simulator_conforms_to_paper_statistics() {
    let (_, report) = baseline();
    let found = violations(report);
    assert!(
        found.is_empty(),
        "calibration drifted from the paper:\n  {}",
        found.join("\n  ")
    );
}

/// Negative control: the suite must *fail demonstrably* when a
/// calibration constant is perturbed. Inflating the regular persona's
/// Gmail-account distribution (median 2 → 20, the worker regime) through
/// the `PersonaOverrides` hook has to trip the account-count bands — if
/// it doesn't, the tolerances above are too loose to protect anything.
#[test]
fn conformance_detects_a_perturbed_calibration() {
    let mut config = conformance_config();
    let mut regular = PersonaParams::regular();
    regular.gmail_accounts = ClampedLogNormal::new(20.0, 0.45, 10.0, 80.0);
    config.fleet.overrides.regular = Some(regular);

    let out = Study::new(config).run();
    let report = MeasurementReport::compute(&out);
    let found = violations(&report);
    assert!(
        found.iter().any(|m| m.starts_with("gmail_accounts:")),
        "perturbing the regular Gmail-account median must trip a \
         gmail_accounts band; violations were: {found:?}"
    );
}

/// The observability registry never reaches the data fingerprint: two
/// identically-configured runs fingerprint identically even though their
/// wall-clock histograms differ (tested here at the conformance config so
/// the suite exercises the direct path; tests/determinism.rs covers the
/// wire path and thread invariance).
#[test]
fn metrics_stay_out_of_the_fingerprint() {
    let (out, _) = baseline();
    let again = Study::new(conformance_config()).run();
    assert_eq!(common::fingerprint(out), common::fingerprint(&again));
    // Wall-clock histograms are genuinely recorded (non-zero spans) …
    assert!(out.metrics.simulate_secs > 0.0);
    // … but the registry snapshot is not part of the fingerprint, so
    // differing timings between the two runs did not perturb it.
    assert!(again.metrics.simulate_secs > 0.0);
    assert_ne!(
        out.obs.snapshot().histograms.get("span.simulate"),
        again.obs.snapshot().histograms.get("span.simulate"),
        "independent runs time differently (nanosecond-exact collision \
         would be astronomically unlikely)"
    );
}
