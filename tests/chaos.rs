//! Chaos suite: the transfer protocol must deliver a byte-identical study
//! under every injected fault class.
//!
//! The contract under test (ARCHITECTURE.md "Chaos and idempotency",
//! PROTOCOL.md §§5–7): the study's *data* output is a pure function of the
//! configuration and seed — a hostile network can change how many times
//! things are sent, never what is ultimately ingested. The retry/backoff
//! state machine recovers from loss, the sequence-checked codec absorbs
//! duplication and reordering, reconnect-and-resume recovers from stream
//! poisoning and resets, and the server's idempotent ingest absorbs
//! replays without double-counting.
//!
//! One full study runs per fault profile (each class alone, then the
//! combined hostile profile) and every run's data fingerprint must equal
//! the fault-free baseline's, while the fault/retry metrics prove the
//! faults actually happened and were actually survived.

mod common;

use common::{
    assert_text_stream_equals_batch, data_fingerprint, streaming_fingerprint, text_config,
    text_fingerprint,
};
use racket_collect::FaultPlan;
use racketstore::study::{CollectionPath, Study, StudyOutput};

/// The chaos fleet generates review text (ARCHITECTURE.md §13), so every
/// fault profile also exercises the streaming near-duplicate text index:
/// a replayed or reordered upload must never double-fold a review row.
/// Text generation is keyed off a dedicated stream family, so this
/// changes nothing else about the study (`tests/text_equivalence.rs`
/// pins that no-perturbation contract explicitly).
fn run_with(path: CollectionPath, faults: FaultPlan) -> (String, StudyOutput) {
    let mut config = text_config(path);
    config.faults = faults;
    let out = Study::new(config).run();
    (data_fingerprint(&out), out)
}

#[test]
fn study_output_survives_every_fault_class() {
    let (baseline, clean) = run_with(CollectionPath::Wire, FaultPlan::none());
    let streaming_baseline = streaming_fingerprint(&clean);
    let text_baseline = text_fingerprint(&clean);
    assert!(
        !text_baseline.starts_with("streaming:texted_installs=0 "),
        "chaos baseline carries no review text (text recovery is vacuous)"
    );

    // The clean run is genuinely clean: the fault layer is off and the
    // retry machinery never fires.
    let m = &clean.metrics;
    assert_eq!(m.faults.total(), 0);
    assert!(m.upload_attempts > 0);
    assert_eq!(m.upload_retries, 0);
    assert_eq!(m.reconnects, 0);
    assert_eq!(m.backoff_ms, 0);
    assert_eq!(m.stale_frames, 0);
    assert_eq!(m.dup_files_deduped, 0);
    assert_eq!(clean.server_stats.dup_files, 0);

    let profiles: [(&str, FaultPlan); 8] = [
        ("drop", FaultPlan::drops()),
        ("duplicate", FaultPlan::duplicates()),
        ("reorder", FaultPlan::reorders()),
        ("truncate", FaultPlan::truncations()),
        ("corrupt", FaultPlan::corruptions()),
        ("disconnect", FaultPlan::disconnects()),
        ("stall", FaultPlan::stalls()),
        ("hostile", FaultPlan::hostile()),
    ];
    for (name, plan) in profiles {
        let (fp, out) = run_with(CollectionPath::Wire, plan);

        // The headline assertion: data output byte-identical to the
        // fault-free run.
        assert_eq!(
            fp, baseline,
            "{name}: study data diverged from the fault-free baseline"
        );

        // The streaming feature state folded at ingest time must recover
        // byte-identically too: replays, reorders and reconnects are
        // deduplicated *before* the fold hooks run, so a hostile network
        // can never double-count an aggregate.
        assert_eq!(
            streaming_fingerprint(&out),
            streaming_baseline,
            "{name}: streaming feature state diverged from the fault-free baseline"
        );

        // So must the streaming text index: post-recovery sketch state is
        // byte-identical to the clean run's, and still equals the batch
        // rebuild from the columnar review family.
        assert_eq!(
            text_fingerprint(&out),
            text_baseline,
            "{name}: text-index state diverged from the fault-free baseline"
        );
        assert_text_stream_equals_batch(&out, name);

        // The faults really happened…
        let m = &out.metrics;
        let f = &m.faults;
        assert!(f.total() > 0, "{name}: plan injected no faults");
        match name {
            "drop" => assert!(f.dropped > 0, "drop class never sampled"),
            "duplicate" => assert!(f.duplicated > 0, "duplicate class never sampled"),
            "reorder" => assert!(f.reordered > 0, "reorder class never sampled"),
            "truncate" => assert!(f.truncated > 0, "truncate class never sampled"),
            "corrupt" => assert!(f.corrupted > 0, "corrupt class never sampled"),
            "disconnect" => assert!(f.disconnected > 0, "disconnect class never sampled"),
            "stall" => assert!(f.stalled > 0, "stall class never sampled"),
            _ => {}
        }

        // …and the protocol visibly worked to survive them.
        match name {
            // Loss-like faults force timeouts and retransmissions.
            "drop" | "stall" => assert!(m.upload_retries > 0, "{name}: no retries"),
            // Duplicated frames are absorbed by strict sequence checking.
            "duplicate" => assert!(m.stale_frames > 0, "{name}: no stale discards"),
            // A held-back frame arrives after its retransmission and is
            // discarded as stale.
            "reorder" => assert!(
                m.upload_retries > 0 && m.stale_frames > 0,
                "{name}: retries={} stale={}",
                m.upload_retries,
                m.stale_frames
            ),
            // Stream poisoning and resets force reconnect-and-resume.
            "truncate" | "corrupt" | "disconnect" => {
                assert!(m.reconnects > 0, "{name}: no reconnects")
            }
            "hostile" => assert!(
                m.upload_retries > 0 && m.reconnects > 0 && m.stale_frames > 0,
                "{name}: retries={} reconnects={} stale={}",
                m.upload_retries,
                m.reconnects,
                m.stale_frames
            ),
            _ => unreachable!(),
        }
        // Retries accumulate simulated backoff.
        if m.upload_retries > 0 {
            assert!(m.backoff_ms > 0, "{name}: retries without backoff");
        }
        // Dropped acks force replays the server must dedup, not re-ingest.
        if matches!(name, "drop" | "hostile") {
            assert!(
                m.dup_files_deduped > 0,
                "{name}: no replayed files were deduped"
            );
            assert_eq!(m.dup_files_deduped, out.server_stats.dup_files);
        }
        // Nothing was abandoned: every exchange eventually completed.
        assert_eq!(
            m.exchanges_exhausted, 0,
            "{name}: retry budget exhausted on some exchange"
        );
    }

    // The async collection plane is a different front end, not a
    // different protocol: driven through the reactor server — clean and
    // under the combined hostile profile — the study must reproduce the
    // same bytes as the synchronous baseline (ARCHITECTURE.md §8).
    for (name, plan) in [
        ("async/clean", FaultPlan::none()),
        ("async/hostile", FaultPlan::hostile()),
    ] {
        let (fp, out) = run_with(CollectionPath::AsyncWire, plan);
        assert_eq!(
            fp, baseline,
            "{name}: async-plane study data diverged from the fault-free baseline"
        );
        assert_eq!(
            streaming_fingerprint(&out),
            streaming_baseline,
            "{name}: async-plane streaming state diverged from the fault-free baseline"
        );
        assert_eq!(
            text_fingerprint(&out),
            text_baseline,
            "{name}: async-plane text-index state diverged from the fault-free baseline"
        );
        assert_text_stream_equals_batch(&out, name);
        let m = &out.metrics;
        if name == "async/hostile" {
            assert!(m.faults.total() > 0, "{name}: plan injected no faults");
            assert!(m.upload_retries > 0, "{name}: no retries");
        } else {
            assert_eq!(m.faults.total(), 0, "{name}: clean link injects nothing");
        }
        assert_eq!(
            m.exchanges_exhausted, 0,
            "{name}: retry budget exhausted on some exchange"
        );
    }
}
