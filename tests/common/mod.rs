//! Shared helpers for the integration-test binaries: canonical study
//! fingerprints and the small study configuration used by the determinism
//! and chaos suites.
//!
//! Each integration test compiles this module independently, so not every
//! binary uses every helper.

#![allow(dead_code)]

use racket_agents::FleetConfig;
use racket_collect::CollectorConfig;
use racketstore::study::{CollectionPath, StudyConfig, StudyOutput};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Canonical fingerprint of everything in a [`StudyOutput`] except the
/// pipeline metrics (wall times are thread-dependent; fault/retry counters
/// vary with the fault plan by design). Hash-map contents are rendered in
/// sorted key order so the fingerprint reflects *data*, never iteration
/// order. Includes the full server stats — the right choice when comparing
/// runs under the *same* fault plan (thread invariance).
pub fn fingerprint(out: &StudyOutput) -> String {
    let mut s = data_fingerprint(out);
    write!(s, " dup_files={}", out.server_stats.dup_files).unwrap();
    s
}

/// Like [`fingerprint`], but excluding the server's `dup_files` counter —
/// the one data-plane stat that legitimately varies with the fault plan
/// (it counts replays absorbed by idempotent ingest). This is the
/// fingerprint the chaos suite compares across fault plans: everything in
/// it must be byte-identical between a clean run and any survivable
/// hostile-network run.
pub fn data_fingerprint(out: &StudyOutput) -> String {
    let mut s = String::new();
    for (obs, truth) in out.observations.iter().zip(&out.truth) {
        let r = &obs.record;
        write!(
            s,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}",
            r.install_id,
            r.participant,
            r.android_id,
            r.first_seen,
            r.last_seen,
            r.n_fast,
            r.n_slow,
            r.snapshots_per_day
        )
        .unwrap();
        let foreground: BTreeMap<_, _> = r.foreground.iter().collect();
        write!(s, "{foreground:?}").unwrap();
        let apps: BTreeMap<_, _> = r.apps.iter().map(|(k, v)| (k, format!("{v:?}"))).collect();
        write!(s, "{apps:?}").unwrap();
        let mut installed: Vec<_> = r.installed_now.iter().collect();
        installed.sort();
        write!(
            s,
            "{installed:?}{:?}{:?}{:?}{:?}",
            r.install_events, r.uninstall_events, r.accounts, r.stopped_apps
        )
        .unwrap();
        write!(s, "{:?}{:?}", obs.monitoring, obs.google_ids).unwrap();
        let reviews: BTreeMap<_, _> = obs
            .reviews_by_app
            .iter()
            .map(|(k, v)| (k, format!("{v:?}")))
            .collect();
        write!(s, "{reviews:?}").unwrap();
        let vt: BTreeMap<_, _> = obs.vt_flags.iter().collect();
        write!(s, "{vt:?}").unwrap();
        let mut pre: Vec<_> = obs.preinstalled.iter().collect();
        pre.sort();
        writeln!(s, "{pre:?}|{:?}", truth.persona).unwrap();
    }
    // Render the stats field-by-field (not `{:?}` of the whole struct) so
    // the fault-variant `dup_files` counter stays out of this fingerprint.
    let st = &out.server_stats;
    write!(
        s,
        "crawled={} coalesced={} sign_ins={} rejected={} files={} snapshots={} bad={} store_reviews={}",
        out.reviews_crawled,
        out.coalesced_devices,
        st.sign_ins,
        st.rejected_sign_ins,
        st.files,
        st.snapshots,
        st.bad_uploads,
        out.fleet.store.total_reviews()
    )
    .unwrap();
    s
}

/// A deliberately small configuration so repeated full study runs stay
/// cheap in debug builds; neither determinism nor chaos recovery depends
/// on scale.
pub fn small_config(path: CollectionPath) -> StudyConfig {
    let mut fleet = FleetConfig::test_scale();
    fleet.n_regular = 8;
    fleet.n_organic = 8;
    fleet.n_dedicated = 4;
    fleet.history_days = 30;
    fleet.max_study_days = 4;
    StudyConfig {
        fleet,
        collector: CollectorConfig {
            fast_period_secs: 120,
            slow_period_secs: 240,
        },
        path,
        seed: 11,
        faults: racket_collect::FaultPlan::none(),
    }
}
