//! Shared helpers for the integration-test binaries: canonical study
//! fingerprints and the small study configuration used by the determinism
//! and chaos suites.
//!
//! Each integration test compiles this module independently, so not every
//! binary uses every helper.

#![allow(dead_code)]

use racket_agents::FleetConfig;
use racket_collect::CollectorConfig;
use racket_features::{app_features, device_features};
use racket_types::AppId;
use racketstore::study::{CollectionPath, StudyConfig, StudyOutput};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Canonical fingerprint of everything in a [`StudyOutput`] except the
/// pipeline metrics (wall times are thread-dependent; fault/retry counters
/// vary with the fault plan by design). Hash-map contents are rendered in
/// sorted key order so the fingerprint reflects *data*, never iteration
/// order. Includes the full server stats — the right choice when comparing
/// runs under the *same* fault plan (thread invariance).
pub fn fingerprint(out: &StudyOutput) -> String {
    let mut s = data_fingerprint(out);
    write!(s, " dup_files={}", out.server_stats.dup_files).unwrap();
    s
}

/// Like [`fingerprint`], but excluding the server's `dup_files` counter —
/// the one data-plane stat that legitimately varies with the fault plan
/// (it counts replays absorbed by idempotent ingest). This is the
/// fingerprint the chaos suite compares across fault plans: everything in
/// it must be byte-identical between a clean run and any survivable
/// hostile-network run.
pub fn data_fingerprint(out: &StudyOutput) -> String {
    let mut s = String::new();
    for (obs, truth) in out.observations.iter().zip(&out.truth) {
        let r = &obs.record;
        write!(
            s,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}",
            r.install_id,
            r.participant,
            r.android_id,
            r.first_seen,
            r.last_seen,
            r.n_fast,
            r.n_slow,
            r.snapshots_per_day
        )
        .unwrap();
        let foreground: BTreeMap<_, _> = r.foreground.iter().collect();
        write!(s, "{foreground:?}").unwrap();
        let apps: BTreeMap<_, _> = r.apps.iter().map(|(k, v)| (k, format!("{v:?}"))).collect();
        write!(s, "{apps:?}").unwrap();
        let mut installed: Vec<_> = r.installed_now.iter().collect();
        installed.sort();
        write!(
            s,
            "{installed:?}{:?}{:?}{:?}{:?}",
            r.install_events, r.uninstall_events, r.accounts, r.stopped_apps
        )
        .unwrap();
        write!(s, "{:?}{:?}", obs.monitoring, obs.google_ids).unwrap();
        let reviews: BTreeMap<_, _> = obs
            .reviews_by_app
            .iter()
            .map(|(k, v)| (k, format!("{v:?}")))
            .collect();
        write!(s, "{reviews:?}").unwrap();
        let vt: BTreeMap<_, _> = obs.vt_flags.iter().collect();
        write!(s, "{vt:?}").unwrap();
        let mut pre: Vec<_> = obs.preinstalled.iter().collect();
        pre.sort();
        writeln!(s, "{pre:?}|{:?}", truth.persona).unwrap();
    }
    // Render the stats field-by-field (not `{:?}` of the whole struct) so
    // the fault-variant `dup_files` counter stays out of this fingerprint.
    let st = &out.server_stats;
    write!(
        s,
        "crawled={} coalesced={} sign_ins={} rejected={} files={} snapshots={} bad={} store_reviews={}",
        out.reviews_crawled,
        out.coalesced_devices,
        st.sign_ins,
        st.rejected_sign_ins,
        st.files,
        st.snapshots,
        st.bad_uploads,
        out.fleet.store.total_reviews()
    )
    .unwrap();
    s
}

/// Canonical fingerprint of the *streaming* feature state: the per-app
/// ingest-time aggregates latched on each install record, plus the exact
/// bit pattern (`f64::to_bits`) of every feature vector emitted from
/// streaming state. Per-app maps render in sorted ID order. The chaos
/// suite compares this across fault plans: streaming state recovered from
/// a hostile network must be byte-identical to a clean run's.
pub fn streaming_fingerprint(out: &StudyOutput) -> String {
    let mut s = String::new();
    for (obs, stream) in out.observations.iter().zip(&out.streaming) {
        let r = &obs.record;
        write!(
            s,
            "{:?} installs={} uninstalls={}",
            r.install_id, r.stream.n_install_events, r.stream.n_uninstall_events
        )
        .unwrap();
        let per_app: BTreeMap<_, _> = r
            .stream
            .apps()
            .map(|(k, v)| (k, format!("{v:?}")))
            .collect();
        write!(s, "{per_app:?}").unwrap();
        let mut apps: Vec<AppId> = r.apps.keys().copied().collect();
        apps.sort_unstable();
        for app in apps {
            let bits: Vec<u64> = stream
                .app_vector(obs, app)
                .iter()
                .map(|f| f.to_bits())
                .collect();
            write!(s, "|{app:?}:{bits:x?}").unwrap();
        }
        let bits: Vec<u64> = stream
            .device_vector(obs, 0.0)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        writeln!(s, "|device:{bits:x?}").unwrap();
    }
    s
}

/// Assert that every feature vector emitted from streaming state is
/// `f64`-bit-identical to the batch formulas recomputed from the raw
/// assembled observation — the differential contract of the streaming
/// engine (ARCHITECTURE.md §7). `context` names the scenario in failures.
pub fn assert_stream_equals_batch(out: &StudyOutput, context: &str) {
    assert_eq!(
        out.streaming.len(),
        out.observations.len(),
        "{context}: streaming state misaligned with observations"
    );
    for (i, (obs, stream)) in out.observations.iter().zip(&out.streaming).enumerate() {
        let mut apps: Vec<AppId> = obs.record.apps.keys().copied().collect();
        apps.sort_unstable();
        for app in apps {
            let streamed = stream.app_vector(obs, app);
            let batch = app_features(obs, app);
            assert_eq!(streamed.len(), batch.len(), "{context}: app vector arity");
            for (col, (sv, bv)) in streamed.iter().zip(&batch).enumerate() {
                assert_eq!(
                    sv.to_bits(),
                    bv.to_bits(),
                    "{context}: device {i} app {app:?} feature {col}: \
                     streaming {sv:?} != batch {bv:?}"
                );
            }
        }
        // Any suspiciousness constant passes through both paths untouched;
        // exercise the 0 edge and an arbitrary interior value.
        for susp in [0.0, 0.375] {
            let streamed = stream.device_vector(obs, susp);
            let batch = device_features(obs, susp);
            assert_eq!(
                streamed.len(),
                batch.len(),
                "{context}: device vector arity"
            );
            for (col, (sv, bv)) in streamed.iter().zip(&batch).enumerate() {
                assert_eq!(
                    sv.to_bits(),
                    bv.to_bits(),
                    "{context}: device {i} feature {col} (susp {susp}): \
                     streaming {sv:?} != batch {bv:?}"
                );
            }
        }
    }
}

/// Canonical fingerprint of a study's campaign-detection report: the
/// incremental report carried on the output plus the batch recomputation
/// from the columnar install-event family, rendered through
/// `CampaignReport::fingerprint` (densities as exact `f64` bit patterns).
/// The equivalence suite compares this string across thread counts and
/// delivery paths.
pub fn campaign_fingerprint(out: &StudyOutput) -> String {
    format!(
        "incremental:{}\nbatch:{}",
        out.campaigns.fingerprint(),
        racketstore::campaign::batch_report(out).fingerprint()
    )
}

/// Canonical fingerprint of the per-install streaming text-sketch state
/// next to its batch recomputation from the columnar review family
/// (ARCHITECTURE.md §13). The text suites compare this string across
/// thread counts, delivery paths and fault plans; the two halves must
/// also equal each other, which [`assert_text_stream_equals_batch`]
/// checks per scenario.
pub fn text_fingerprint(out: &StudyOutput) -> String {
    format!(
        "streaming:{}\nbatch:{}",
        racketstore::text::streaming_text_fingerprint(out),
        racketstore::text::batch_text_fingerprint(out)
    )
}

/// Assert the text engine's differential contract: the per-install
/// [`racket_text::TextSketch`] folded review-by-review at ingest time
/// must be byte-identical to the sketch rebuilt in batch from the
/// columnar review family. `context` names the scenario in failures.
pub fn assert_text_stream_equals_batch(out: &StudyOutput, context: &str) {
    assert_eq!(
        racketstore::text::streaming_text_fingerprint(out),
        racketstore::text::batch_text_fingerprint(out),
        "{context}: streaming text sketches != batch rebuild from columnar reviews"
    );
}

/// [`small_config`] with deterministic review-text generation enabled —
/// the configuration of the text-equivalence suites. Everything else
/// (fleet, cadence, seed) is byte-identical to [`small_config`], which
/// is exactly what the no-perturbation pin in `tests/text_equivalence.rs`
/// relies on.
pub fn text_config(path: CollectionPath) -> StudyConfig {
    let mut config = small_config(path);
    config.fleet.review_text = true;
    config
}

/// [`campaign_config`] with review text enabled: campaign workers post
/// template-shared review text, so the near-duplicate index has real
/// cross-account structure to find.
pub fn text_campaign_config(
    path: CollectionPath,
    n: usize,
    pacing: racket_agents::PacingStrategy,
) -> StudyConfig {
    let mut config = campaign_config(path, n, pacing);
    config.fleet.review_text = true;
    config
}

/// [`small_config`] with `n` coordinated campaigns scheduled under the
/// given pacing — the configuration of the lockstep-detection suites.
pub fn campaign_config(
    path: CollectionPath,
    n: usize,
    pacing: racket_agents::PacingStrategy,
) -> StudyConfig {
    let mut config = small_config(path);
    config.fleet.campaigns = racket_agents::CampaignConfig::with(n, pacing);
    config
}

/// Run `f` with the rayon worker-thread count pinned through the
/// process-global `RAYON_NUM_THREADS` variable. Callers that pin threads
/// must run their scenarios inside a single `#[test]` — concurrent tests
/// flipping the variable would race.
pub fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// A deliberately small configuration so repeated full study runs stay
/// cheap in debug builds; neither determinism nor chaos recovery depends
/// on scale.
pub fn small_config(path: CollectionPath) -> StudyConfig {
    let mut fleet = FleetConfig::test_scale();
    fleet.n_regular = 8;
    fleet.n_organic = 8;
    fleet.n_dedicated = 4;
    fleet.history_days = 30;
    fleet.max_study_days = 4;
    StudyConfig {
        fleet,
        collector: CollectorConfig {
            fast_period_secs: 120,
            slow_period_secs: 240,
            collect_reviews: false,
        },
        path,
        seed: 11,
        faults: racket_collect::FaultPlan::none(),
    }
}
